#pragma once
// The bounded data path: shared backpressure & flow-control spine under
// both engines. Every executor in-queue is governed by one FlowControl
// instance — bounded per-task occupancy with a configurable overflow
// policy, plus the loss/stall accounting the control plane and the chaos
// invariants read.
//
// Occupancy of a task counts every tuple that has been *admitted* toward
// the task and not yet finished: in network flight, queued, or in
// service. Admission happens at the emit site (sender-side credit, like
// Storm's bounded receive queues seen from the transfer layer), so the
// observable queue depth of a task never exceeds the configured capacity.
//
// Policies:
//   kUnbounded     — today-compatible default: admit() always accepts and
//                    no occupancy accounting runs; engines keep their
//                    historical byte-identical behaviour.
//   kBlockUpstream — a full destination parks the tuple at the emit site
//                    and stalls the emitting task (the simulator replays
//                    the parked tuple on the next credit release; the
//                    threads runtime waits on the queue's condition
//                    variable). Backpressure propagates hop by hop until
//                    the spouts stop consuming from the workload.
//   kDropNewest    — a full destination sheds the newly arriving tuple;
//                    the loss is counted per task (tuples_dropped_overflow)
//                    and the root fails at the ack-timeout sweep, so
//                    at-least-once replay still covers the loss.
//
// Thread-safety: counters are relaxed atomics so the threads runtime can
// update them from worker threads; the simulator's single-threaded event
// context pays only uncontended atomic ops. The admit/acquire pair is NOT
// atomic as a unit — the simulator is single-threaded so it composes
// exactly, and the threads runtime re-checks under the destination
// queue's mutex (see rt::RtEngine::enqueue).
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/flags.hpp"

namespace repro::runtime {

enum class OverflowPolicy {
  kUnbounded,      ///< no per-queue bound (historical behaviour)
  kBlockUpstream,  ///< full queue stalls the emitter (lossless backpressure)
  kDropNewest,     ///< full queue sheds the arriving tuple (loss accounted)
};

const char* overflow_policy_name(OverflowPolicy policy);
/// Parse "unbounded" | "block" | "drop" (the CLI flag spellings). Throws
/// std::invalid_argument naming the unknown spelling.
OverflowPolicy parse_overflow_policy(const std::string& name);

struct FlowControlConfig {
  /// Per-task in-queue capacity (admitted tuples: in flight + queued + in
  /// service). Ignored under kUnbounded; must be > 0 otherwise.
  std::size_t queue_capacity = 0;
  OverflowPolicy policy = OverflowPolicy::kUnbounded;

  bool bounded() const { return policy != OverflowPolicy::kUnbounded; }

  /// Reject inconsistent configurations: a bounded policy with zero
  /// capacity, or a capacity with no policy to enforce it. Throws
  /// std::invalid_argument with a diagnostic.
  void validate() const;
};

/// Build a FlowControlConfig from raw CLI flag values, rejecting negative
/// capacities before the silent signed->unsigned conversion could turn
/// them into "practically unbounded". Throws std::invalid_argument.
FlowControlConfig flow_config_from_flags(long long queue_capacity, const std::string& policy);

/// Which engine drives the topology: the deterministic discrete-event
/// simulator, the thread-per-worker rt engine, or the event-loop async
/// engine.
enum class BackendKind { kSim, kRt, kAsync };

const char* backend_kind_name(BackendKind backend);
/// Parse "sim" | "rt" | "async" (the CLI flag spellings). Throws
/// std::invalid_argument naming the unknown spelling.
BackendKind parse_backend_kind(const std::string& name);

/// The data-path CLI flags shared by every example binary — append to the
/// binary's `known` list: --queue-cap=N, --overflow-policy=POLICY,
/// --max-pending=N, --batch-size=N, --backend=sim|rt|async.
const std::vector<std::string>& data_path_flag_names();
/// One usage line documenting those flags (no trailing newline).
const char* data_path_flag_usage();

/// Shared CLI plumbing for the data-path flags, deduplicating the parse
/// blocks the example binaries used to copy-paste: reads the flags out of
/// `flags` and applies only the ones present onto the caller's config
/// fields (absent flags leave the defaults untouched). On any bad value —
/// negative/non-integer capacity or pending, unknown policy, batch size
/// < 1, unknown backend — prints the diagnostic to stderr and returns
/// false so the CLI can exit 2.
bool apply_data_path_flags(const common::Flags& flags, FlowControlConfig& flow,
                           std::size_t& max_spout_pending, std::size_t& batch_size,
                           BackendKind& backend);
/// Overload for binaries with a fixed backend: --backend is still parsed
/// (and still rejects bad values) but the selection is discarded.
bool apply_data_path_flags(const common::Flags& flags, FlowControlConfig& flow,
                           std::size_t& max_spout_pending, std::size_t& batch_size);

/// Per-task flow-control state shared by both engines: admission
/// decisions against the configured capacity, occupancy (credit)
/// accounting, and overflow-loss / backpressure-stall counters surfaced
/// through WindowSample and the chaos invariants.
class FlowControl {
 public:
  enum class Admit {
    kAccept,  ///< take a credit (acquire) and deliver
    kBlock,   ///< kBlockUpstream and the task is full: park the tuple
    kDrop,    ///< kDropNewest and the task is full: shed the tuple
  };

  FlowControl(FlowControlConfig config, std::size_t task_count);

  FlowControl(const FlowControl&) = delete;
  FlowControl& operator=(const FlowControl&) = delete;

  const FlowControlConfig& config() const { return cfg_; }
  bool bounded() const { return cfg_.bounded(); }
  std::size_t task_count() const { return tasks_.size(); }

  /// Admission decision for one more tuple toward `task`. Under
  /// kUnbounded this is always kAccept and occupancy is not consulted.
  Admit admit(std::size_t task) const;

  /// Batch admission: how many of `n` more tuples toward `task` may be
  /// admitted right now. kUnbounded: all `n`. kBlockUpstream: `n` if the
  /// whole batch fits, else 0 — batches park whole and drain whole, so a
  /// blocked batch is never split (requires batch size <= capacity for
  /// liveness; the engines validate that at construction). kDropNewest:
  /// the head that fits — the caller sheds the `n - admit_n` tail and
  /// accounts each shed tuple via count_overflow_drops. At n == 1 every
  /// policy degenerates to admit().
  std::size_t admit_n(std::size_t task, std::size_t n) const;

  // --- occupancy (credit) accounting -----------------------------------
  /// Take a credit after a kAccept decision (no-ops under kUnbounded, so
  /// the historical hot path stays untouched).
  void acquire(std::size_t task);
  /// Take `n` credits at once (an admitted batch, or its admitted head).
  void acquire_n(std::size_t task, std::size_t n);
  /// Release one credit: the admitted tuple finished service, was dropped
  /// by a fault, or was destroyed by a crash.
  void release(std::size_t task);
  /// Crash path: release `n` credits at once (the dead worker's queue).
  void release_n(std::size_t task, std::size_t n);
  std::size_t occupancy(std::size_t task) const;

  /// Suspend/resume bridge for event-loop backends: invoked after every
  /// release/release_n with (task, credits returned), so an inflight
  /// limiter can drain batches parked behind that task and resume the
  /// suspended emitters. Set once before the engine starts (not
  /// thread-safe against concurrent releases); never fires under
  /// kUnbounded. The cv-based rt engine and the simulator leave it unset
  /// and pay one untaken branch.
  void set_release_listener(std::function<void(std::size_t, std::size_t)> listener);

  // --- loss / stall accounting -----------------------------------------
  // Window accumulators are drained by the engines' metrics samplers into
  // WindowSample (take_*); lifetime totals feed run summaries and the
  // chaos conservation invariant.
  void count_overflow_drop(std::size_t task);
  /// Account `n` tuples shed at once (the tail of a partially admitted
  /// batch under kDropNewest) — exactly n per-tuple drops, one counter op.
  void count_overflow_drops(std::size_t task, std::uint64_t n);
  std::uint64_t dropped_overflow(std::size_t task) const;  ///< lifetime
  std::uint64_t total_dropped_overflow() const;
  /// Drain the task's overflow-drop window accumulator.
  std::uint64_t take_overflow_drops(std::size_t task);
  /// Accumulate backpressure-stall time experienced by `task` as an
  /// emitter (seconds its parked tuples waited for downstream credit).
  void add_stall(std::size_t task, double seconds);
  double stall_seconds(std::size_t task) const;  ///< lifetime
  double total_stall_seconds() const;
  /// Drain the task's stall window accumulator.
  double take_stall(std::size_t task);

 private:
  struct TaskState {
    std::atomic<std::size_t> occupancy{0};
    std::atomic<std::uint64_t> dropped_overflow{0};        ///< window accumulator
    std::atomic<std::uint64_t> dropped_overflow_total{0};  ///< lifetime
    std::atomic<std::uint64_t> stall_ns{0};                ///< window accumulator
    std::atomic<std::uint64_t> stall_ns_total{0};          ///< lifetime
  };

  FlowControlConfig cfg_;
  std::vector<std::unique_ptr<TaskState>> tasks_;
  std::function<void(std::size_t, std::size_t)> release_listener_;
};

}  // namespace repro::runtime
