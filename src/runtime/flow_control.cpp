#include "runtime/flow_control.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace repro::runtime {

const char* overflow_policy_name(OverflowPolicy policy) {
  switch (policy) {
    case OverflowPolicy::kUnbounded: return "unbounded";
    case OverflowPolicy::kBlockUpstream: return "block";
    case OverflowPolicy::kDropNewest: return "drop";
  }
  return "?";
}

OverflowPolicy parse_overflow_policy(const std::string& name) {
  if (name == "unbounded") return OverflowPolicy::kUnbounded;
  if (name == "block") return OverflowPolicy::kBlockUpstream;
  if (name == "drop") return OverflowPolicy::kDropNewest;
  throw std::invalid_argument("parse_overflow_policy: unknown policy '" + name +
                              "' (use unbounded|block|drop)");
}

void FlowControlConfig::validate() const {
  if (bounded() && queue_capacity == 0) {
    throw std::invalid_argument(std::string("FlowControlConfig: policy ") +
                                overflow_policy_name(policy) +
                                " requires queue_capacity > 0");
  }
  if (!bounded() && queue_capacity != 0) {
    throw std::invalid_argument(
        "FlowControlConfig: queue_capacity set but policy is unbounded "
        "(set policy=block|drop, or capacity=0)");
  }
}

FlowControlConfig flow_config_from_flags(long long queue_capacity, const std::string& policy) {
  if (queue_capacity < 0) {
    throw std::invalid_argument("flow_config_from_flags: negative queue capacity " +
                                std::to_string(queue_capacity));
  }
  FlowControlConfig cfg;
  cfg.queue_capacity = static_cast<std::size_t>(queue_capacity);
  cfg.policy = parse_overflow_policy(policy);
  cfg.validate();
  return cfg;
}

const char* backend_kind_name(BackendKind backend) {
  switch (backend) {
    case BackendKind::kSim: return "sim";
    case BackendKind::kRt: return "rt";
    case BackendKind::kAsync: return "async";
  }
  return "?";
}

BackendKind parse_backend_kind(const std::string& name) {
  if (name == "sim") return BackendKind::kSim;
  if (name == "rt") return BackendKind::kRt;
  if (name == "async") return BackendKind::kAsync;
  throw std::invalid_argument("parse_backend_kind: unknown backend '" + name +
                              "' (use sim|rt|async)");
}

const std::vector<std::string>& data_path_flag_names() {
  static const std::vector<std::string> names = {"queue-cap", "overflow-policy", "max-pending",
                                                 "batch-size", "backend"};
  return names;
}

const char* data_path_flag_usage() {
  return "  [--queue-cap=N --overflow-policy=unbounded|block|drop] [--max-pending=N]\n"
         "  [--batch-size=N] [--backend=sim|rt|async]";
}

bool apply_data_path_flags(const common::Flags& flags, FlowControlConfig& flow,
                           std::size_t& max_spout_pending, std::size_t& batch_size,
                           BackendKind& backend) {
  try {
    if (flags.has("backend")) backend = parse_backend_kind(flags.get("backend"));
    if (flags.has("max-pending")) {
      long long pending = flags.get_int("max-pending", 0);
      if (pending < 0) {
        throw std::invalid_argument("flag --max-pending: negative value " +
                                    std::to_string(pending));
      }
      max_spout_pending = static_cast<std::size_t>(pending);
    }
    if (flags.has("queue-cap") || flags.has("overflow-policy")) {
      flow = flow_config_from_flags(flags.get_int("queue-cap", 0),
                                    flags.get("overflow-policy", "unbounded"));
    }
    if (flags.has("batch-size")) {
      long long batch = flags.get_int("batch-size", 1);
      if (batch < 1) {
        throw std::invalid_argument("flag --batch-size: must be >= 1, got " +
                                    std::to_string(batch));
      }
      batch_size = static_cast<std::size_t>(batch);
    }
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return false;
  }
  return true;
}

bool apply_data_path_flags(const common::Flags& flags, FlowControlConfig& flow,
                           std::size_t& max_spout_pending, std::size_t& batch_size) {
  BackendKind ignored = BackendKind::kSim;
  return apply_data_path_flags(flags, flow, max_spout_pending, batch_size, ignored);
}

FlowControl::FlowControl(FlowControlConfig config, std::size_t task_count) : cfg_(config) {
  cfg_.validate();
  tasks_.reserve(task_count);
  for (std::size_t i = 0; i < task_count; ++i) tasks_.push_back(std::make_unique<TaskState>());
}

FlowControl::Admit FlowControl::admit(std::size_t task) const {
  if (!cfg_.bounded()) return Admit::kAccept;
  if (tasks_.at(task)->occupancy.load(std::memory_order_relaxed) < cfg_.queue_capacity) {
    return Admit::kAccept;
  }
  return cfg_.policy == OverflowPolicy::kBlockUpstream ? Admit::kBlock : Admit::kDrop;
}

std::size_t FlowControl::admit_n(std::size_t task, std::size_t n) const {
  if (!cfg_.bounded() || n == 0) return n;
  std::size_t occ = tasks_.at(task)->occupancy.load(std::memory_order_relaxed);
  std::size_t free = occ < cfg_.queue_capacity ? cfg_.queue_capacity - occ : 0;
  if (cfg_.policy == OverflowPolicy::kBlockUpstream) return n <= free ? n : 0;
  return n <= free ? n : free;
}

void FlowControl::acquire(std::size_t task) {
  if (!cfg_.bounded()) return;
  tasks_.at(task)->occupancy.fetch_add(1, std::memory_order_relaxed);
}

void FlowControl::acquire_n(std::size_t task, std::size_t n) {
  if (!cfg_.bounded() || n == 0) return;
  tasks_.at(task)->occupancy.fetch_add(n, std::memory_order_relaxed);
}

void FlowControl::release(std::size_t task) { release_n(task, 1); }

void FlowControl::release_n(std::size_t task, std::size_t n) {
  if (!cfg_.bounded() || n == 0) return;
  std::atomic<std::size_t>& occ = tasks_.at(task)->occupancy;
  std::size_t cur = occ.load(std::memory_order_relaxed);
  // Saturating decrement: a release beyond zero indicates an engine
  // accounting bug; clamping keeps the failure observable (occupancy
  // stuck low -> chaos conservation catches the mirror-image leak) rather
  // than wrapping to a huge value that would deadlock everything.
  while (true) {
    std::size_t next = cur >= n ? cur - n : 0;
    if (occ.compare_exchange_weak(cur, next, std::memory_order_relaxed)) break;
  }
  if (release_listener_) release_listener_(task, n);
}

void FlowControl::set_release_listener(
    std::function<void(std::size_t, std::size_t)> listener) {
  release_listener_ = std::move(listener);
}

std::size_t FlowControl::occupancy(std::size_t task) const {
  return tasks_.at(task)->occupancy.load(std::memory_order_relaxed);
}

void FlowControl::count_overflow_drop(std::size_t task) { count_overflow_drops(task, 1); }

void FlowControl::count_overflow_drops(std::size_t task, std::uint64_t n) {
  if (n == 0) return;
  TaskState& t = *tasks_.at(task);
  t.dropped_overflow.fetch_add(n, std::memory_order_relaxed);
  t.dropped_overflow_total.fetch_add(n, std::memory_order_relaxed);
}

std::uint64_t FlowControl::dropped_overflow(std::size_t task) const {
  return tasks_.at(task)->dropped_overflow_total.load(std::memory_order_relaxed);
}

std::uint64_t FlowControl::total_dropped_overflow() const {
  std::uint64_t sum = 0;
  for (const auto& t : tasks_) sum += t->dropped_overflow_total.load(std::memory_order_relaxed);
  return sum;
}

std::uint64_t FlowControl::take_overflow_drops(std::size_t task) {
  return tasks_.at(task)->dropped_overflow.exchange(0, std::memory_order_relaxed);
}

void FlowControl::add_stall(std::size_t task, double seconds) {
  if (seconds <= 0.0) return;
  auto ns = static_cast<std::uint64_t>(std::llround(seconds * 1e9));
  TaskState& t = *tasks_.at(task);
  t.stall_ns.fetch_add(ns, std::memory_order_relaxed);
  t.stall_ns_total.fetch_add(ns, std::memory_order_relaxed);
}

double FlowControl::stall_seconds(std::size_t task) const {
  return static_cast<double>(tasks_.at(task)->stall_ns_total.load(std::memory_order_relaxed)) *
         1e-9;
}

double FlowControl::total_stall_seconds() const {
  std::uint64_t sum = 0;
  for (const auto& t : tasks_) sum += t->stall_ns_total.load(std::memory_order_relaxed);
  return static_cast<double>(sum) * 1e-9;
}

double FlowControl::take_stall(std::size_t task) {
  return static_cast<double>(tasks_.at(task)->stall_ns.exchange(0, std::memory_order_relaxed)) *
         1e-9;
}

}  // namespace repro::runtime
