#include "runtime/window_history.hpp"

#include <algorithm>
#include <stdexcept>

namespace repro::runtime {

WindowHistory::WindowHistory(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ > 0) samples_.reserve(2 * capacity_);
}

void WindowHistory::set_capacity(std::size_t capacity) {
  capacity_ = capacity;
  compact_if_needed();
  if (capacity_ > 0 && samples_.capacity() < 2 * capacity_) samples_.reserve(2 * capacity_);
}

void WindowHistory::push(dsps::WindowSample sample) {
  samples_.push_back(std::move(sample));
  storage_high_water_ = std::max(storage_high_water_, samples_.capacity());
  compact_if_needed();
  if (!subscribers_.empty()) {
    std::size_t global = first_index_ + samples_.size() - 1;
    for (const auto& [token, fn] : subscribers_) fn(samples_.back(), global);
  }
}

void WindowHistory::compact_if_needed() {
  if (capacity_ == 0 || samples_.size() < 2 * capacity_) return;
  std::size_t drop = samples_.size() - capacity_;
  samples_.erase(samples_.begin(), samples_.begin() + static_cast<std::ptrdiff_t>(drop));
  first_index_ += drop;
}

const dsps::WindowSample& WindowHistory::at_global(std::size_t global_index) const {
  if (global_index < first_index_ || global_index >= total()) {
    throw std::out_of_range("WindowHistory::at_global: window " + std::to_string(global_index) +
                            " outside retained range [" + std::to_string(first_index_) + ", " +
                            std::to_string(total()) + ")");
  }
  return samples_[global_index - first_index_];
}

void WindowHistory::copy_tail(std::size_t n, std::vector<dsps::WindowSample>& out) const {
  out.clear();
  std::size_t take = std::min(n, samples_.size());
  out.insert(out.end(), samples_.end() - static_cast<std::ptrdiff_t>(take), samples_.end());
}

std::size_t WindowHistory::subscribe(Subscriber fn) {
  if (!fn) throw std::invalid_argument("WindowHistory::subscribe: null subscriber");
  std::size_t token = next_token_++;
  subscribers_.emplace_back(token, std::move(fn));
  return token;
}

void WindowHistory::unsubscribe(std::size_t token) {
  subscribers_.erase(std::remove_if(subscribers_.begin(), subscribers_.end(),
                                    [token](const auto& s) { return s.first == token; }),
                     subscribers_.end());
}

}  // namespace repro::runtime
