#pragma once
// The runtime-agnostic control/observability surface. The predictive
// control loop (monitor -> predict -> detect -> plan -> actuate) needs
// only Storm-level abstractions — multilevel window statistics, component
// -> task -> worker placement, and the dynamic-grouping split-ratio handle
// — so it is written against this interface and attaches unchanged to the
// discrete-event engine (dsps::Engine) or the real-threads runtime
// (rt::RtEngine).
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "dsps/grouping.hpp"
#include "dsps/metrics.hpp"
#include "dsps/scheduler.hpp"
#include "runtime/window_history.hpp"

namespace repro::runtime {

class FlowControl;

/// One controllable (from -> to) dynamic-grouping connection of a
/// topology, as discovered by ControlSurface::dynamic_edges().
struct DynamicEdge {
  std::string from;
  std::string to;
};

class ControlSurface {
 public:
  /// Periodic control callback. Fired at window boundaries, every
  /// `interval` seconds (rounded to a whole number of windows), from the
  /// backend's metrics context — on the threads runtime that is the
  /// sampler thread, so hooks may freely read history().
  using ControlHook = std::function<void(ControlSurface&)>;

  virtual ~ControlSurface();

  /// Short backend identifier ("sim", "rt").
  virtual std::string backend_name() const = 0;
  /// Current time in seconds: simulated time or wall-clock since start().
  virtual double now_seconds() const = 0;

  // --- observability ---------------------------------------------------
  /// The window-history spine: retention-bounded multilevel per-window
  /// statistics with stable global window indices. On threaded backends,
  /// read only from a control hook (fires in the writer's context) or
  /// after the run stopped.
  virtual const WindowHistory& window_history() const = 0;
  /// Legacy view: the retained window samples as a vector (the complete
  /// history when the spine is unbounded). Same threading rules as
  /// window_history(). Prefer window_history() for new code — vector
  /// indices stop matching window numbers once eviction kicks in.
  virtual const std::vector<dsps::WindowSample>& history() const;
  virtual std::size_t worker_count() const = 0;
  /// Global task-id range [first, first+parallelism) of a component.
  virtual std::pair<std::size_t, std::size_t> tasks_of(const std::string& component) const = 0;
  virtual std::size_t worker_of_task(std::size_t global_task) const = 0;
  /// Workers hosting at least one task of `component`.
  virtual std::vector<std::size_t> workers_of(const std::string& component) const = 0;
  virtual std::size_t queue_length_of_task(std::size_t global_task) const = 0;
  /// The engine's bounded-queue layer (per-task occupancy, overflow-drop
  /// and backpressure-stall accounting), or nullptr when the backend has
  /// no flow-control layer. Engines with one return it even under the
  /// kUnbounded default (its config says so).
  virtual const FlowControl* flow_control() const { return nullptr; }
  /// Lifetime scheduler counters (wakeups, steals, suspend/resume,
  /// ready-queue peak). Threaded backends override; the simulator has no
  /// scheduler to observe and returns zeros.
  virtual dsps::SchedulerWindowStats scheduler_totals() const { return {}; }

  // --- actuation -------------------------------------------------------
  /// The split-ratio handle of the (from -> to) dynamic-grouping
  /// connection. Throws std::invalid_argument (with a diagnostic naming
  /// the connection) when missing or not dynamic.
  virtual std::shared_ptr<dsps::DynamicRatio> dynamic_ratio(const std::string& from,
                                                            const std::string& to) const = 0;
  /// Every dynamic-grouping connection of the topology, in declaration
  /// order — the edges a topology-attached controller takes over.
  virtual std::vector<DynamicEdge> dynamic_edges() const = 0;
  virtual void set_control_hook(double interval, ControlHook hook) = 0;

  // --- fault actuators (where supported) -------------------------------
  virtual bool supports_fault_injection() const { return false; }
  /// Multiply the worker's per-tuple service durations by `factor` (>= 1).
  virtual void set_worker_slowdown(std::size_t worker, double factor);
  /// Drop tuples arriving at the worker with this probability.
  virtual void set_worker_drop_prob(std::size_t worker, double probability);
  /// Injected-fault state, readable by oracle controllers and tests.
  virtual double worker_slowdown(std::size_t worker) const;
  virtual double worker_drop_prob(std::size_t worker) const;

  // --- spout rate control (where supported) ----------------------------
  /// Backends with a credit-based spout throttle (the acker's pending
  /// count gates spout emission at max_spout_pending in-flight roots)
  /// expose the cap as a live actuator so rate controllers can retune it.
  virtual bool supports_spout_throttle() const { return false; }
  /// The current in-flight-roots cap shared by every spout task.
  virtual std::size_t max_spout_pending() const;
  /// Retune the cap. Fail-closed: throws std::invalid_argument on 0 under
  /// a kBlockUpstream flow policy (backpressure needs a finite credit).
  /// Thread-safe on the real-threads backends (the spouts read an atomic).
  virtual void set_max_spout_pending(std::size_t cap);

  // --- crash/recovery (where supported) --------------------------------
  virtual bool supports_crash_recovery() const { return false; }
  /// Hard-kill a worker: tuples queued at its executors are lost (their
  /// roots fail at the ack timeout), and the supervisor reassigns the
  /// executors to surviving workers via the shared deterministic policy
  /// (dsps::plan_crash_reassignment). No-op if already dead.
  virtual void crash_worker(std::size_t worker);
  /// Rejoin a crashed worker and reclaim its originally assigned
  /// executors (graceful migration: queued tuples move with the task).
  /// No-op if alive.
  virtual void restart_worker(std::size_t worker);
  /// Liveness of a worker; true on backends without crash support.
  virtual bool worker_alive([[maybe_unused]] std::size_t worker) const { return true; }

  // --- elastic scaling (where supported) --------------------------------
  /// The worker pool is fixed at construction; elastic scaling toggles an
  /// orthogonal `active` flag per worker. A retired worker keeps its
  /// process (and crash/restart state) but hosts no executors and is
  /// excluded from placement until re-activated — the modeled analogue of
  /// releasing / re-acquiring a cloud instance.
  virtual bool supports_elastic_scaling() const { return false; }
  /// Re-activate a retired worker so it may host executors again. Does
  /// not rebalance by itself — the rescale planner issues migrate_tasks()
  /// moves onto the rejoined worker. No-op if already active.
  virtual void add_worker(std::size_t worker);
  /// Gracefully drain a worker out of the pool: its executors migrate
  /// (quiesce -> move -> resume, queued tuples travel with the task) to
  /// the remaining active workers via the shared deterministic policy
  /// (dsps::plan_crash_reassignment), then the worker stops accepting
  /// placements. Throws std::invalid_argument when no active worker would
  /// remain to host the executors. No-op if already retired.
  virtual void retire_worker(std::size_t worker);
  /// Apply a batch of planned executor migrations. Fail-closed: every
  /// move is validated first (task range, destination range, destination
  /// alive and active — diagnostics name the offending field, e.g.
  /// "moves[2].to_worker: worker 5 is retired"), then all are applied.
  virtual void migrate_tasks(const std::vector<dsps::TaskMove>& moves);
  /// Scaling eligibility of a worker; true on backends without elastic
  /// scaling (the fixed pool is fully active).
  virtual bool worker_active([[maybe_unused]] std::size_t worker) const { return true; }
  /// Executor placement snapshot: worker_task_snapshot()[w] holds the
  /// global task ids currently on worker w, in task-id order — the input
  /// the rescale planner feeds to dsps::plan_crash_reassignment. Empty on
  /// backends without elastic scaling.
  virtual std::vector<std::vector<std::size_t>> worker_task_snapshot() const { return {}; }
};

}  // namespace repro::runtime
