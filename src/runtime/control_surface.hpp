#pragma once
// The runtime-agnostic control/observability surface. The predictive
// control loop (monitor -> predict -> detect -> plan -> actuate) needs
// only Storm-level abstractions — multilevel window statistics, component
// -> task -> worker placement, and the dynamic-grouping split-ratio handle
// — so it is written against this interface and attaches unchanged to the
// discrete-event engine (dsps::Engine) or the real-threads runtime
// (rt::RtEngine).
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "dsps/grouping.hpp"
#include "dsps/metrics.hpp"

namespace repro::runtime {

class ControlSurface {
 public:
  /// Periodic control callback. Fired at window boundaries, every
  /// `interval` seconds (rounded to a whole number of windows), from the
  /// backend's metrics context — on the threads runtime that is the
  /// sampler thread, so hooks may freely read history().
  using ControlHook = std::function<void(ControlSurface&)>;

  virtual ~ControlSurface();

  /// Short backend identifier ("sim", "rt").
  virtual std::string backend_name() const = 0;
  /// Current time in seconds: simulated time or wall-clock since start().
  virtual double now_seconds() const = 0;

  // --- observability ---------------------------------------------------
  /// Multilevel per-window statistics since the run started. On threaded
  /// backends, call only from a control hook or after the run stopped.
  virtual const std::vector<dsps::WindowSample>& history() const = 0;
  virtual std::size_t worker_count() const = 0;
  /// Global task-id range [first, first+parallelism) of a component.
  virtual std::pair<std::size_t, std::size_t> tasks_of(const std::string& component) const = 0;
  virtual std::size_t worker_of_task(std::size_t global_task) const = 0;
  /// Workers hosting at least one task of `component`.
  virtual std::vector<std::size_t> workers_of(const std::string& component) const = 0;
  virtual std::size_t queue_length_of_task(std::size_t global_task) const = 0;

  // --- actuation -------------------------------------------------------
  /// The split-ratio handle of the (from -> to) dynamic-grouping
  /// connection. Throws std::invalid_argument (with a diagnostic naming
  /// the connection) when missing or not dynamic.
  virtual std::shared_ptr<dsps::DynamicRatio> dynamic_ratio(const std::string& from,
                                                            const std::string& to) const = 0;
  virtual void set_control_hook(double interval, ControlHook hook) = 0;

  // --- fault actuators (where supported) -------------------------------
  virtual bool supports_fault_injection() const { return false; }
  /// Multiply the worker's per-tuple service durations by `factor` (>= 1).
  virtual void set_worker_slowdown(std::size_t worker, double factor);
  /// Drop tuples arriving at the worker with this probability.
  virtual void set_worker_drop_prob(std::size_t worker, double probability);
  /// Injected-fault state, readable by oracle controllers and tests.
  virtual double worker_slowdown(std::size_t worker) const;
  virtual double worker_drop_prob(std::size_t worker) const;
};

}  // namespace repro::runtime
