#include "runtime/window_stats.hpp"

#include <algorithm>

namespace repro::runtime {

dsps::TaskWindowStats finalize_task_window(std::size_t task, const std::string& component,
                                           std::size_t comp_index, std::size_t worker,
                                           TaskCounters& c, std::size_t queue_len) {
  dsps::TaskWindowStats s;
  s.task = task;
  s.component = component;
  s.comp_index = comp_index;
  s.worker = worker;
  s.executed = c.executed;
  s.emitted = c.emitted;
  s.received = c.received;
  s.dropped = c.dropped;
  s.dropped_overflow = c.dropped_overflow;
  s.avg_exec_latency = c.executed > 0 ? c.exec_time / static_cast<double>(c.executed) : 0.0;
  s.avg_queue_wait = c.executed > 0 ? c.queue_wait / static_cast<double>(c.executed) : 0.0;
  s.queue_len = queue_len;
  s.bp_stall = c.bp_stall;
  c.reset();
  return s;
}

dsps::WorkerWindowStats finalize_worker_window(std::size_t worker, std::size_t machine,
                                               std::size_t executors, WorkerCounters& c,
                                               std::size_t queue_len, double window_seconds) {
  dsps::WorkerWindowStats s;
  s.worker = worker;
  s.machine = machine;
  s.executors = executors;
  s.executed = c.executed;
  s.emitted = c.emitted;
  s.received = c.received;
  s.avg_proc_time =
      c.executed > 0 ? c.exec_time_sum / static_cast<double>(c.executed) : 0.0;
  s.avg_queue_wait =
      c.executed > 0 ? c.queue_wait_sum / static_cast<double>(c.executed) : 0.0;
  s.queue_len = queue_len;
  s.cpu_share = c.service_seconds / window_seconds;
  s.gc_pause = c.gc_pause;
  // Synthetic resident memory: base footprint + queued tuples.
  s.mem_mb = 128.0 + 24.0 * static_cast<double>(executors) +
             0.004 * static_cast<double>(queue_len);
  s.bp_stall = c.bp_stall;
  c.reset();
  return s;
}

dsps::TopologyWindowStats finalize_topology_window(TopologyCounters& c, double window_seconds,
                                                   std::uint64_t pending) {
  dsps::TopologyWindowStats topo;
  topo.roots_emitted = c.roots_emitted;
  topo.acked = c.acked;
  topo.failed = c.failed;
  topo.dropped_overflow = c.dropped_overflow;
  topo.pending = pending;
  topo.throughput = static_cast<double>(c.acked) / window_seconds;
  topo.avg_complete_latency =
      c.acked > 0 ? c.latency_sum / static_cast<double>(c.acked) : 0.0;
  if (!c.latencies.empty()) {
    std::sort(c.latencies.begin(), c.latencies.end());
    auto idx = static_cast<std::size_t>(0.99 * static_cast<double>(c.latencies.size() - 1));
    topo.p99_complete_latency = c.latencies[idx];
  }
  c.reset();
  return topo;
}

}  // namespace repro::runtime
