#include "runtime/control_surface.hpp"

#include <stdexcept>

namespace repro::runtime {

ControlSurface::~ControlSurface() = default;

const std::vector<dsps::WindowSample>& ControlSurface::history() const {
  return window_history().samples();
}

namespace {
[[noreturn]] void unsupported(const ControlSurface& surface, const char* what) {
  throw std::logic_error(std::string(what) + ": not supported by the '" +
                         surface.backend_name() + "' backend");
}
}  // namespace

void ControlSurface::set_worker_slowdown(std::size_t, double) {
  unsupported(*this, "set_worker_slowdown");
}

void ControlSurface::set_worker_drop_prob(std::size_t, double) {
  unsupported(*this, "set_worker_drop_prob");
}

double ControlSurface::worker_slowdown(std::size_t) const {
  unsupported(*this, "worker_slowdown");
}

double ControlSurface::worker_drop_prob(std::size_t) const {
  unsupported(*this, "worker_drop_prob");
}

std::size_t ControlSurface::max_spout_pending() const {
  unsupported(*this, "max_spout_pending");
}

void ControlSurface::set_max_spout_pending(std::size_t) {
  unsupported(*this, "set_max_spout_pending");
}

void ControlSurface::crash_worker(std::size_t) { unsupported(*this, "crash_worker"); }

void ControlSurface::restart_worker(std::size_t) { unsupported(*this, "restart_worker"); }

void ControlSurface::add_worker(std::size_t) { unsupported(*this, "add_worker"); }

void ControlSurface::retire_worker(std::size_t) { unsupported(*this, "retire_worker"); }

void ControlSurface::migrate_tasks(const std::vector<dsps::TaskMove>&) {
  unsupported(*this, "migrate_tasks");
}

}  // namespace repro::runtime
