#pragma once
// The async backend's home for the runtime::FlowControl credits.
//
// Under kBlockUpstream the cv-based rt engine blocks the emitting *thread*
// on the destination queue's condition variable, sliced into <=20ms waits
// (`bp_max_wait`) with a soft-push escape valve for self-cycles and thread
// wait cycles. The limiter replaces all of that with task suspension: a
// batch that does not fit is parked in a per-destination FIFO, the emitting
// task is gated (its scheduler step returns kSuspend, so it stops consuming
// input / polling the workload), and the next credit release on that
// destination — wired through FlowControl's release listener — delivers the
// parked batches in order and resumes the emitters whose last parked batch
// drained. No thread ever blocks, so there is nothing for a wait cycle to
// deadlock and no escape valve that can overshoot the queue bound.
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "runtime/flow_control.hpp"
#include "runtime/tuple_batch.hpp"

namespace repro::rt {

class InflightLimiter {
 public:
  /// Deliver an admitted batch (credits already acquired): push it into
  /// the destination's in-queue and notify the destination task. Called
  /// with the destination's limiter mutex held; must not re-enter the
  /// limiter.
  using DeliverFn =
      std::function<void(std::size_t src, std::size_t dest, runtime::TupleBatch&&)>;
  /// Re-queue a suspended emitter task (EventLoop::resume).
  using ResumeFn = std::function<void(std::size_t task)>;

  InflightLimiter(runtime::FlowControl& flow, std::size_t task_count);

  void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }
  void set_resume(ResumeFn fn) { resume_ = std::move(fn); }

  /// kBlockUpstream admission of a whole batch from `src` toward `dest`:
  /// acquires credits and delivers inline when the batch fits AND nothing
  /// older is parked (FIFO — later batches never overtake a parked one),
  /// otherwise parks the batch and gates `src`. Returns true when
  /// delivered, false when parked (the caller's step should finish its
  /// current work and return kSuspend once it sees gated()).
  bool admit_or_park(std::size_t src, std::size_t dest, runtime::TupleBatch&& batch);

  /// FlowControl release listener: credits returned to `dest` — deliver as
  /// many parked batches as now fit (in park order, whole batches only)
  /// and resume emitters whose last parked batch drained.
  void on_release(std::size_t dest);

  /// True while `src` has at least one parked batch anywhere: the task
  /// must not consume more input or poll the workload.
  bool gated(std::size_t src) const {
    return gate_[src].load(std::memory_order_acquire) > 0;
  }

  std::size_t parked_tuples() const { return parked_tuples_.load(std::memory_order_relaxed); }
  std::uint64_t suspends() const { return suspends_.load(std::memory_order_relaxed); }
  std::uint64_t resumes() const { return resumes_.load(std::memory_order_relaxed); }

 private:
  struct Parked {
    std::size_t src;
    runtime::TupleBatch batch;
    std::chrono::steady_clock::time_point parked_at;
  };
  struct DestState {
    std::mutex mutex;
    std::deque<Parked> fifo;
  };

  /// Gate bookkeeping for one parked batch of `src` draining (or being
  /// parked: +1). On the 1->0 edge the emitter is resumed.
  void gate_up(std::size_t src);
  void gate_down(std::size_t src);

  runtime::FlowControl& flow_;
  std::vector<std::unique_ptr<DestState>> dests_;
  std::unique_ptr<std::atomic<std::size_t>[]> gate_;
  DeliverFn deliver_;
  ResumeFn resume_;

  std::atomic<std::size_t> parked_tuples_{0};
  std::atomic<std::uint64_t> suspends_{0};
  std::atomic<std::uint64_t> resumes_{0};
};

}  // namespace repro::rt
