#pragma once
// Real-threads runtime: executes the same Topology API on actual OS
// threads with real bounded queues and wall-clock windows — the in-process
// analogue of a Storm worker. The discrete-event engine (dsps::Engine) is
// the instrument for the paper's experiments (deterministic, simulated
// interference); this runtime demonstrates that the component model,
// groupings (including dynamic grouping) and acking semantics carry over
// unchanged to real concurrent execution.
//
// Model: one thread per worker process; each worker thread round-robins
// over its executors' input queues. Spout tasks are paced by their
// next_delay inside their worker's loop. Tick tuples drive on_window.
#include <atomic>
#include <chrono>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "dsps/acker.hpp"
#include "dsps/scheduler.hpp"
#include "dsps/topology.hpp"

namespace repro::rt {

struct RtConfig {
  std::size_t workers = 2;
  double window_seconds = 0.1;  ///< on_window cadence (wall clock)
  double ack_timeout = 5.0;
  /// End-to-end backpressure: spouts stop emitting while this many tuple
  /// trees are in flight (queues themselves are unbounded; a producer and
  /// its consumer may share a worker thread, so blocking pushes could
  /// self-deadlock).
  std::size_t max_spout_pending = 5000;
};

struct RtTotals {
  std::uint64_t roots_emitted = 0;
  std::uint64_t acked = 0;
  std::uint64_t failed = 0;
  std::uint64_t executed = 0;
};

class RtEngine {
 public:
  RtEngine(dsps::Topology topology, RtConfig config);
  ~RtEngine();

  RtEngine(const RtEngine&) = delete;
  RtEngine& operator=(const RtEngine&) = delete;

  /// Start worker threads. Call once.
  void start();
  /// Signal shutdown and join all threads. Safe to call repeatedly.
  void stop();
  /// Convenience: start, run for a wall-clock duration, stop.
  void run_for(std::chrono::milliseconds duration);

  RtTotals totals() const;
  /// Mean complete latency (seconds) over all acked roots.
  double mean_complete_latency() const;
  std::size_t worker_count() const { return config_.workers; }
  /// Executed-tuple count per task (snapshot).
  std::vector<std::uint64_t> executed_per_task() const;
  std::pair<std::size_t, std::size_t> tasks_of(const std::string& component) const;

 private:
  struct QueuedTuple {
    dsps::Tuple tuple;
    std::chrono::steady_clock::time_point root_emit;
  };

  struct TaskQueue {
    std::mutex mutex;
    std::deque<QueuedTuple> items;
    std::size_t high_water = 0;
  };

  struct OutRoute {
    std::string stream;
    std::size_t dest_component;
    std::unique_ptr<dsps::GroupingState> grouping;
  };

  class Collector;

  struct TaskRt {
    std::size_t global_id = 0;
    std::size_t component = 0;
    std::size_t comp_index = 0;
    std::size_t worker = 0;
    std::unique_ptr<dsps::Spout> spout;
    std::unique_ptr<dsps::Bolt> bolt;
    std::unique_ptr<Collector> collector;
    std::unique_ptr<TaskQueue> queue;
    std::vector<OutRoute> routes;
    std::atomic<std::uint64_t> executed{0};
    std::chrono::steady_clock::time_point next_spout_poll{};
    std::chrono::steady_clock::time_point next_window{};
  };

  struct ComponentRt {
    std::string name;
    bool is_spout = false;
    std::size_t first_task = 0;
    std::size_t parallelism = 0;
  };

  void worker_loop(std::size_t worker);
  void spout_step(TaskRt& task, std::chrono::steady_clock::time_point now);
  bool bolt_step(TaskRt& task);
  void route_emit(TaskRt& src, dsps::Tuple&& t,
                  std::chrono::steady_clock::time_point root_emit);
  void enqueue(std::size_t dest, QueuedTuple&& qt);
  double seconds_since_start(std::chrono::steady_clock::time_point tp) const;

  dsps::Topology topo_;
  RtConfig config_;
  std::vector<ComponentRt> components_;
  std::deque<TaskRt> tasks_;  // deque: TaskRt holds atomics (non-movable)
  std::vector<std::vector<std::size_t>> worker_tasks_;
  std::vector<std::thread> threads_;
  std::atomic<bool> running_{false};
  bool started_ = false;
  std::chrono::steady_clock::time_point start_time_{};

  mutable std::mutex acker_mutex_;
  dsps::Acker acker_;
  std::atomic<std::uint64_t> next_tuple_id_{1};
  std::atomic<std::uint64_t> roots_emitted_{0};
  std::atomic<std::uint64_t> acked_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> latency_ns_sum_{0};
};

}  // namespace repro::rt
