#pragma once
// Real-threads runtime: executes the same Topology API on actual OS
// threads with real bounded queues and wall-clock windows — the in-process
// analogue of a Storm worker. The discrete-event engine (dsps::Engine) is
// the instrument for the paper's experiments (deterministic, simulated
// interference); this runtime demonstrates that the component model,
// groupings (including dynamic grouping) and acking semantics carry over
// unchanged to real concurrent execution.
//
// Model: one thread per worker process; each worker thread round-robins
// over its executors' input queues. Spout tasks are paced by their
// next_delay inside their worker's loop. Tick tuples drive on_window. A
// separate metrics thread samples wall-clock WindowSamples at the window
// cadence and fires the control hook, so the predictive controller
// attaches to this runtime exactly as it does to the simulator (both
// implement runtime::ControlSurface over the shared runtime core).
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "dsps/acker.hpp"
#include "dsps/metrics.hpp"
#include "dsps/scheduler.hpp"
#include "dsps/topology.hpp"
#include "runtime/control_surface.hpp"
#include "runtime/flow_control.hpp"
#include "runtime/topology_state.hpp"
#include "runtime/tuple_batch.hpp"
#include "runtime/window_stats.hpp"

namespace repro::rt {

struct RtConfig {
  std::size_t workers = 2;
  double window_seconds = 0.1;  ///< metrics/on_window cadence (wall clock)
  double ack_timeout = 5.0;
  /// End-to-end backpressure: spouts stop emitting while this many tuple
  /// trees are in flight (with the default unbounded queues this is the
  /// only limit; a producer and its consumer may share a worker thread,
  /// so blocking pushes could self-deadlock — see `flow`).
  std::size_t max_spout_pending = 5000;
  /// Bounded data path (runtime::FlowControl): per-task in-queue capacity
  /// and overflow policy. Default kUnbounded keeps the historical
  /// behaviour. Under kBlockUpstream a full queue blocks the emitting
  /// worker thread on the destination queue's condition variable —
  /// except when the destination is owned by the emitting thread itself
  /// (soft push instead: a hard wait would self-deadlock), and bounded by
  /// `bp_max_wait` to keep liveness under adversarial thread cycles.
  runtime::FlowControlConfig flow{};
  /// kBlockUpstream escape valve: after blocking this long (seconds) on
  /// one push, push anyway (the capacity is exceeded transiently rather
  /// than deadlocking worker-thread cycles). Must be > 0.
  double bp_max_wait = 0.25;
  /// Metrics-history retention (runtime::WindowHistory capacity). The
  /// real-threads runtime is long-lived, so it bounds history by default —
  /// at least this many most-recent windows are kept and memory stays
  /// flat. Set 0 to opt out (unbounded, like the simulator's default).
  std::size_t history_capacity = 4096;
  /// Columnar batched data path: tuples coalesced into one TupleBatch at
  /// every emit site before routing/enqueue, amortizing the per-item
  /// queue-mutex and acker-lock work over whole batches. 1 (the default)
  /// keeps the historical tuple-at-a-time behaviour. Under kBlockUpstream
  /// it must be <= flow.queue_capacity (batches park whole).
  std::size_t batch_size = 1;
};

struct RtTotals {
  std::uint64_t roots_emitted = 0;
  std::uint64_t acked = 0;
  std::uint64_t failed = 0;
  std::uint64_t executed = 0;
  std::uint64_t lost = 0;  ///< tuples discarded from crashed workers' queues
  std::uint64_t dropped_overflow = 0;  ///< shed at full bounded in-queues
  std::uint64_t worker_crashes = 0;
  std::uint64_t worker_restarts = 0;
  std::uint64_t worker_retires = 0;   ///< graceful scale-in drains
  std::uint64_t worker_adds = 0;      ///< scale-out re-activations
  std::uint64_t task_migrations = 0;  ///< executors moved by rescale plans
  // Scheduler observability (see dsps::SchedulerWindowStats for the
  // per-backend meaning of a "wakeup"). The cv-based rt engine has no
  // work stealing or task suspension, so steals/suspends/resumes stay 0
  // there; the async engine fills all of them.
  std::uint64_t wakeups_productive = 0;
  std::uint64_t wakeups_spurious = 0;
  std::uint64_t steals = 0;
  std::uint64_t suspends = 0;
  std::uint64_t resumes = 0;
  std::size_t ready_peak = 0;
};

class RtEngine : public runtime::ControlSurface {
 public:
  RtEngine(dsps::Topology topology, RtConfig config);
  ~RtEngine() override;

  RtEngine(const RtEngine&) = delete;
  RtEngine& operator=(const RtEngine&) = delete;

  /// Start worker + metrics threads. Call once.
  void start();
  /// Signal shutdown and join all threads. Safe to call repeatedly.
  void stop();
  /// Convenience: start, run for a wall-clock duration, stop.
  void run_for(std::chrono::milliseconds duration);

  RtTotals totals() const;
  /// Mean complete latency (seconds) over all acked roots.
  double mean_complete_latency() const;
  /// Executed-tuple count per task (cumulative snapshot).
  std::vector<std::uint64_t> executed_per_task() const;

  // --- control surface -----------------------------------------------
  std::string backend_name() const override { return "rt"; }
  /// Wall-clock seconds since start().
  double now_seconds() const override;
  /// Wall-clock WindowSamples collected by the metrics thread (retention
  /// set by RtConfig::history_capacity; bounded by default). Safe to read
  /// from a control hook (fires on the metrics thread) or after stop();
  /// racy while worker threads run otherwise.
  const runtime::WindowHistory& window_history() const override { return history_; }
  std::size_t worker_count() const override { return config_.workers; }
  std::pair<std::size_t, std::size_t> tasks_of(const std::string& component) const override;
  std::size_t worker_of_task(std::size_t global_task) const override;
  std::vector<std::size_t> workers_of(const std::string& component) const override;
  std::size_t queue_length_of_task(std::size_t global_task) const override;
  /// The bounded data path (present even under the kUnbounded default;
  /// its config() says which policy runs).
  const runtime::FlowControl* flow_control() const override { return &flow_; }
  /// Worker-loop wakeup counters (one per loop pass: productive when it
  /// found work, spurious when it fell back to the idle sleep). No steals
  /// or suspend/resume on this backend.
  dsps::SchedulerWindowStats scheduler_totals() const override;
  /// The DynamicRatio of the (from -> to) dynamic-grouping connection.
  /// Throws std::invalid_argument when missing or not dynamic. Thread-safe
  /// to actuate while workers run (DynamicRatio is internally locked).
  std::shared_ptr<dsps::DynamicRatio> dynamic_ratio(const std::string& from,
                                                    const std::string& to) const override;
  std::vector<runtime::DynamicEdge> dynamic_edges() const override;
  /// Fire `hook` on the metrics thread every `interval` seconds (rounded
  /// to a whole number of windows). Set before start().
  void set_control_hook(double interval, runtime::ControlSurface::ControlHook hook) override;
  // Fault actuators (thread-safe; usable while the runtime executes).
  bool supports_fault_injection() const override { return true; }
  /// Stretch the worker's bolt executions by `factor` (busy-wait padding
  /// after each execute; shows up in avg_proc_time like a degraded host).
  void set_worker_slowdown(std::size_t worker, double factor) override;
  /// Drop tuples arriving at the worker's tasks with this probability
  /// (their roots fail at the ack timeout, as with a lossy worker).
  void set_worker_drop_prob(std::size_t worker, double probability) override;
  double worker_slowdown(std::size_t worker) const override;
  double worker_drop_prob(std::size_t worker) const override;
  // Crash/recovery (thread-safe; usable while the runtime executes). The
  // thread-level analogue of the simulator's hard kill: the worker thread
  // parks, everything queued at its executors is discarded (those roots
  // fail at the ack timeout), and the supervisor reassigns the executors
  // via the same deterministic policy as the simulator, so recovered
  // routing tables match across backends. Documented tolerance vs the
  // simulator: a tuple already executing on the crashing thread completes
  // (threads cannot be killed mid-execute), and there is no timeout-driven
  // replay on this backend.
  // Spout rate control (thread-safe): the credit cap lives in an atomic
  // the spout steps read, so a rate controller can retune it mid-run.
  bool supports_spout_throttle() const override { return true; }
  std::size_t max_spout_pending() const override {
    return spout_cap_.load(std::memory_order_relaxed);
  }
  void set_max_spout_pending(std::size_t cap) override;
  bool supports_crash_recovery() const override { return true; }
  void crash_worker(std::size_t worker) override;
  void restart_worker(std::size_t worker) override;
  bool worker_alive(std::size_t worker) const override;
  // Elastic scaling (thread-safe; usable while the runtime executes).
  // Graceful migration rides the per-task execution lease: placement
  // mutates under assignment_mutex_, the version bump makes every worker
  // loop re-snapshot its task list, and the lease CAS guarantees the old
  // and new owner never step a migrated task concurrently (quiesce ->
  // move -> resume); queued tuples travel with the task.
  bool supports_elastic_scaling() const override { return true; }
  void add_worker(std::size_t worker) override;
  void retire_worker(std::size_t worker) override;
  void migrate_tasks(const std::vector<dsps::TaskMove>& moves) override;
  bool worker_active(std::size_t worker) const override;
  std::vector<std::vector<std::size_t>> worker_task_snapshot() const override;
  /// Placement-table consistency check (see dsps::Engine::placement_audit).
  std::string placement_audit() const;

 private:
  /// The queue unit: a routed TupleBatch (size 1 under the default
  /// config) and its enqueue time. Per-row root-emit times ride in the
  /// batch's root_emit_times column (seconds since start()).
  struct QueuedBatch {
    runtime::TupleBatch batch;
    std::chrono::steady_clock::time_point enqueued;
  };

  struct TaskQueue {
    std::mutex mutex;
    std::condition_variable cv;  ///< signalled on pop/clear (kBlockUpstream waiters)
    std::deque<QueuedBatch> items;
    std::size_t tuples = 0;      ///< sum of queued batch sizes (capacity unit)
    std::size_t high_water = 0;  ///< peak queued tuples
  };

  class Collector;

  /// Per-task threaded-runtime state; the static tables (spout/bolt
  /// instances, routes, placement) live in core_. Window counters are
  /// atomics drained by the metrics thread (times in nanoseconds).
  struct TaskRt {
    std::unique_ptr<Collector> collector;
    std::unique_ptr<TaskQueue> queue;
    /// Per-stream coalescing buffers for this task's bolt emits; touched
    /// only by the lease-holding worker thread and flushed at the end of
    /// every execute/on_window run, so it is empty between steps.
    runtime::EmitBuffer emits;
    std::atomic<std::uint64_t> executed{0};  ///< cumulative, for totals()
    std::atomic<std::uint64_t> w_executed{0};
    std::atomic<std::uint64_t> w_emitted{0};
    std::atomic<std::uint64_t> w_received{0};
    std::atomic<std::uint64_t> w_dropped{0};
    std::atomic<std::uint64_t> w_exec_ns{0};
    std::atomic<std::uint64_t> w_wait_ns{0};
    /// Execution lease: held by the worker thread while it steps this
    /// task, so a migrated task is never executed by the old and the new
    /// owner concurrently.
    std::atomic<bool> lease{false};
    std::chrono::steady_clock::time_point next_spout_poll{};
    std::chrono::steady_clock::time_point next_window{};
  };

  /// Per-worker fault-injection state (mirrors the simulator's Worker).
  struct WorkerRt {
    std::atomic<double> slowdown{1.0};
    std::atomic<double> drop_prob{0.0};
    std::atomic<bool> alive{true};
    /// Elastic-scaling eligibility, orthogonal to alive: a retired worker
    /// keeps its thread but hosts no executors and is excluded from
    /// placement until re-activated.
    std::atomic<bool> active{true};
  };

  /// Reassign under assignment_mutex_ (caller holds it): core + mirror +
  /// migration counter, for crash reassignment and rescale moves alike.
  void reassign_task_locked(std::size_t task, std::size_t to_worker);
  void worker_loop(std::size_t worker);
  void metrics_loop();
  void sample_window(std::chrono::steady_clock::time_point now);
  void spout_step(TaskRt& task, std::size_t task_id,
                  std::chrono::steady_clock::time_point now);
  bool bolt_step(TaskRt& task, std::size_t task_id, std::size_t worker);
  /// Append a bolt emit to its task's coalescing buffer; routes the
  /// stream's open batch the moment it reaches the configured size.
  void buffer_emit(std::size_t task, dsps::Tuple&& t);
  void flush_emits(std::size_t task);
  void route_emit_batch(std::size_t src_task, runtime::TupleBatch& batch);
  void enqueue(std::size_t src_task, std::size_t dest, runtime::TupleBatch&& b);
  double seconds_since_start(std::chrono::steady_clock::time_point tp) const;

  dsps::Topology topo_;
  RtConfig config_;
  dsps::Assignment assignment_;
  runtime::TopologyState core_;
  runtime::FlowControl flow_;
  std::deque<TaskRt> tasks_;    // deque: TaskRt holds atomics (non-movable)
  std::deque<WorkerRt> workers_;
  /// Guards placement mutations in core_ (crash reassignment / restart
  /// reclaim). Worker loops snapshot their task lists under it when
  /// assignment_version_ moves; hot paths read task_worker_ instead.
  mutable std::mutex assignment_mutex_;
  std::atomic<std::uint64_t> assignment_version_{0};
  std::deque<std::atomic<std::size_t>> task_worker_;  ///< racy-read placement mirror
  /// Live spout-throttle cap (initialized from config_.max_spout_pending).
  std::atomic<std::size_t> spout_cap_{0};
  std::atomic<std::uint64_t> lost_{0};
  std::atomic<std::uint64_t> crashes_{0};
  std::atomic<std::uint64_t> restarts_{0};
  std::atomic<std::uint64_t> retires_{0};
  std::atomic<std::uint64_t> adds_{0};
  std::atomic<std::uint64_t> migrations_{0};
  std::atomic<std::uint64_t> wakeups_productive_{0};
  std::atomic<std::uint64_t> wakeups_spurious_{0};
  dsps::SchedulerWindowStats sched_prev_;  ///< metrics thread only
  std::vector<std::thread> threads_;
  std::thread metrics_thread_;
  std::atomic<bool> running_{false};
  bool started_ = false;
  std::chrono::steady_clock::time_point start_time_{};

  mutable std::mutex acker_mutex_;
  dsps::Acker acker_;
  runtime::TopologyCounters w_topo_;  ///< guarded by acker_mutex_
  std::atomic<std::uint64_t> next_tuple_id_{1};
  std::atomic<std::uint64_t> roots_emitted_{0};
  std::atomic<std::uint64_t> acked_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> latency_ns_sum_{0};

  runtime::WindowHistory history_;  ///< written by metrics thread
  double control_interval_ = 0.0;
  runtime::ControlSurface::ControlHook control_hook_;
};

}  // namespace repro::rt
