#pragma once
// Work-stealing ready-queue scheduler for the async rt backend.
//
// Executors are *tasks*, not threads: an executor becomes runnable when an
// enqueue event notifies it, runs a bounded step on whichever loop thread
// picks it up, and goes back to idle (or suspends on backpressure) instead
// of parking a dedicated thread on a per-queue condition variable. The loop
// keeps per-thread local run queues plus a global lock-free MPSC injector
// for notifications arriving from outside the loop, steals across threads
// when a local queue runs dry, and drives deadlines (spout pacing, window
// ticks) through a hashed timer wheel so a sleeping loop thread wakes
// exactly when the next deadline is due.
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace repro::rt {

/// Lifetime scheduler counters, drained incrementally by the engine's
/// metrics thread and surfaced through ControlSurface/RtTotals.
struct EventLoopStats {
  std::uint64_t wakeups_productive = 0;  ///< thread wakeups that found work
  std::uint64_t wakeups_spurious = 0;    ///< thread wakeups that found none
  std::uint64_t steals = 0;              ///< tasks taken from another thread's queue
  std::size_t ready_peak = 0;            ///< peak ready-queue depth observed
};

/// Hashed timer wheel: O(1) schedule, slot-granular expiry scan. Entries
/// whose deadline lands beyond one wheel revolution stay in their slot and
/// are re-examined on each pass (deadline is stored per entry, so a long
/// timer simply survives intermediate visits). Not thread-safe by itself;
/// EventLoop guards it with the sleep mutex.
class TimerWheel {
 public:
  using Clock = std::chrono::steady_clock;

  TimerWheel(Clock::duration slot_width, std::size_t slot_count);

  void schedule(std::uint32_t task, Clock::time_point when);
  /// Moves every entry due at `now` into `due`. Returns the earliest
  /// pending deadline among the remaining entries (Clock::time_point::max()
  /// when the wheel is empty).
  Clock::time_point advance(Clock::time_point now, std::vector<std::uint32_t>& due);
  bool empty() const { return count_ == 0; }

 private:
  struct Entry {
    std::uint32_t task;
    Clock::time_point when;
  };

  std::size_t slot_of(Clock::time_point when) const;

  Clock::duration slot_width_;
  std::vector<std::vector<Entry>> slots_;
  Clock::time_point last_advance_;
  std::size_t count_ = 0;
};

/// The event loop proper. Task ids are dense [0, task_count).
class EventLoop {
 public:
  using Clock = std::chrono::steady_clock;

  /// What a task step tells the scheduler to do next.
  enum class StepResult : std::uint8_t {
    kIdle,     ///< nothing left to do; next notify() re-queues the task
    kYield,    ///< more input pending; re-queue at the back (fairness)
    kSuspend,  ///< backpressure-gated; only resume() re-queues the task
  };

  /// Bounded task step: (task id, loop-thread index) -> what next.
  using RunFn = std::function<StepResult(std::uint32_t, std::size_t)>;

  EventLoop(std::size_t threads, std::size_t task_count, RunFn run);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  void start();
  void stop();

  /// Make `task` runnable (enqueue event / window tick / poll). Deduped by
  /// the per-task state machine: a queued task is not queued twice, a
  /// running task is flagged to re-run, a suspended task ignores plain
  /// notifies (only resume() clears a suspension).
  void notify(std::uint32_t task);

  /// Clear a suspension and re-queue the task. Safe to call concurrently
  /// with the task's own suspend transition: a resume that lands while the
  /// step is still finishing converts into a re-run flag, so the wakeup is
  /// never lost.
  void resume(std::uint32_t task);

  /// Arm a deadline: when it expires, the task is notify()-ed. Multiple
  /// pending deadlines per task are allowed; stale ones deliver a spurious
  /// (harmless, deduped) notify.
  void schedule_at(std::uint32_t task, Clock::time_point when);

  std::size_t threads() const { return threads_; }
  /// Approximate number of currently queued (runnable, not running) tasks.
  std::size_t ready_depth() const { return ready_count_.load(std::memory_order_relaxed); }
  EventLoopStats stats() const;

 private:
  enum State : std::uint8_t {
    kIdle = 0,
    kQueued,
    kRunning,
    kRunningNotified,  ///< notify()/resume() landed mid-step: re-queue after
    kSuspended,
  };

  static constexpr std::uint32_t kNil = 0xffffffffu;

  struct LocalQueue {
    std::mutex mutex;
    std::deque<std::uint32_t> tasks;
  };

  void push_ready(std::uint32_t task);
  bool pop_ready(std::size_t self, std::uint32_t& task);
  /// Drain the MPSC injector stack into `self`'s local queue (FIFO order).
  bool drain_injector(std::size_t self);
  bool steal(std::size_t self, std::uint32_t& task);
  void run_task(std::uint32_t task, std::size_t self);
  void thread_main(std::size_t self);
  /// Fire every due timer (notify()s the owners) and refresh the cached
  /// next-deadline hint. Must be called WITHOUT sleep_mutex_ held.
  void fire_timers(Clock::time_point now);

  std::size_t threads_;
  std::size_t task_count_;
  RunFn run_;
  std::unique_ptr<std::atomic<std::uint8_t>[]> state_;

  // Global injector: intrusive Treiber stack over task ids. A task id can
  // be pushed at most once at a time (the state machine guarantees it), so
  // next_[task] is free whenever the task is not in the stack and the
  // classic ABA pitfall does not arise for the single-swap consumers below:
  // consumers take the whole stack with exchange(kNil) rather than popping
  // one node CAS-by-CAS.
  std::unique_ptr<std::atomic<std::uint32_t>[]> injector_next_;
  std::atomic<std::uint32_t> injector_head_{kNil};

  std::vector<std::unique_ptr<LocalQueue>> local_;
  std::atomic<std::size_t> ready_count_{0};
  std::atomic<std::size_t> ready_peak_{0};

  // Sleep/wake (eventcount-lite) + timers.
  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
  std::atomic<std::size_t> sleepers_{0};       // modified under sleep_mutex_
  TimerWheel wheel_;                           // guarded by sleep_mutex_
  std::vector<std::uint32_t> due_scratch_;     // guarded by sleep_mutex_
  std::atomic<std::int64_t> next_timer_ns_{std::numeric_limits<std::int64_t>::max()};

  std::atomic<bool> running_{false};
  std::vector<std::thread> workers_;

  std::atomic<std::uint64_t> wakeups_productive_{0};
  std::atomic<std::uint64_t> wakeups_spurious_{0};
  std::atomic<std::uint64_t> steals_{0};
};

}  // namespace repro::rt
