#include "rt/async_engine.hpp"

#include <algorithm>
#include <cmath>
#include <thread>
#include <stdexcept>

#include "common/rng.hpp"

namespace repro::rt {

namespace {
constexpr auto kMetricsPoll = std::chrono::milliseconds(2);
/// A task whose owner is dead (total outage / mid-crash race) re-probes at
/// this cadence instead of idling forever: the probe keeps spout pacing
/// and window chains alive across the outage.
constexpr auto kDeadProbe = std::chrono::milliseconds(5);
/// Bound on queue batches consumed per scheduler step: long queues yield
/// back to the ready queue instead of starving sibling tasks on the loop.
constexpr std::size_t kMaxBatchesPerStep = 4;

dsps::Assignment make_assignment(const dsps::Topology& topo, const AsyncConfig& cfg) {
  if (cfg.workers == 0) throw std::invalid_argument("AsyncEngine: need workers");
  return dsps::interleaved_schedule(topo, cfg.workers, 1);
}

std::size_t default_threads(const AsyncConfig& cfg) {
  if (cfg.threads > 0) return cfg.threads;
  std::size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 2;
  return std::max<std::size_t>(1, std::min(cfg.workers, hw));
}

std::atomic<std::uint64_t> g_drop_stream{0};
common::Pcg32& drop_rng() {
  thread_local common::Pcg32 rng(0xa51cu, g_drop_stream.fetch_add(1, std::memory_order_relaxed));
  return rng;
}

std::chrono::steady_clock::duration to_duration(double seconds) {
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(seconds));
}
}  // namespace

class AsyncEngine::Collector : public runtime::TaskCollectorBase {
 public:
  Collector(AsyncEngine* engine, std::size_t task)
      : runtime::TaskCollectorBase(&engine->core_, task), engine_(engine) {}

  void emit(dsps::Values values, const std::string& stream) override {
    dsps::Tuple t;
    t.root_id = current_root_;
    t.root_emit_time = current_root_emit_;
    t.stream = stream;
    t.values = std::move(values);
    engine_->buffer_emit(task_, std::move(t));
  }

  sim::SimTime now() const override {
    return engine_->seconds_since_start(std::chrono::steady_clock::now());
  }

  void set_context(std::uint64_t root, double root_emit_seconds) {
    current_root_ = root;
    current_root_emit_ = root_emit_seconds;
  }
  void clear_context() { current_root_ = 0; }

 private:
  AsyncEngine* engine_;
  std::uint64_t current_root_ = 0;
  double current_root_emit_ = 0.0;
};

AsyncEngine::AsyncEngine(dsps::Topology topology, AsyncConfig config)
    : topo_(std::move(topology)),
      config_(config),
      assignment_(make_assignment(topo_, config_)),
      core_(topo_, assignment_, 0x9000),
      flow_(config_.flow, core_.task_count()),
      acker_(config.ack_timeout),
      history_(config.history_capacity) {
  if (config_.flow.policy == runtime::OverflowPolicy::kBlockUpstream) {
    if (config_.max_spout_pending == 0) {
      throw std::invalid_argument(
          "AsyncEngine: kBlockUpstream needs max_spout_pending > 0 — the "
          "pending-tree limit is the end-to-end cap on parked emits");
    }
    if (config_.batch_size > config_.flow.queue_capacity) {
      throw std::invalid_argument(
          "AsyncEngine: batch_size must be <= queue_capacity under kBlockUpstream — "
          "batches park whole, so a larger batch could never be admitted");
    }
  }
  if (config_.batch_size == 0) {
    throw std::invalid_argument("AsyncEngine: batch_size must be >= 1");
  }
  spout_cap_.store(config_.max_spout_pending, std::memory_order_relaxed);
  tasks_.resize(core_.task_count());
  task_worker_.resize(core_.task_count());
  for (std::size_t gid = 0; gid < tasks_.size(); ++gid) {
    tasks_[gid].collector = std::make_unique<Collector>(this, gid);
    tasks_[gid].queue = std::make_unique<TaskQueue>();
    task_worker_[gid].store(core_.task(gid).worker, std::memory_order_relaxed);
  }
  workers_.resize(config_.workers);

  loop_ = std::make_unique<EventLoop>(
      default_threads(config_), core_.task_count(),
      [this](std::uint32_t task, std::size_t slot) { return step_task(task, slot); });

  if (config_.flow.policy == runtime::OverflowPolicy::kBlockUpstream) {
    limiter_ = std::make_unique<InflightLimiter>(flow_, core_.task_count());
    limiter_->set_deliver([this](std::size_t src, std::size_t dest, runtime::TupleBatch&& b) {
      deliver_admitted(src, dest, std::move(b));
    });
    limiter_->set_resume(
        [this](std::size_t task) { loop_->resume(static_cast<std::uint32_t>(task)); });
    flow_.set_release_listener(
        [this](std::size_t task, std::size_t) { limiter_->on_release(task); });
  }

  acker_.set_on_complete([this](std::uint64_t, double latency, std::size_t) {
    acked_.fetch_add(1, std::memory_order_relaxed);
    latency_ns_sum_.fetch_add(static_cast<std::uint64_t>(latency * 1e9),
                              std::memory_order_relaxed);
    ++w_topo_.acked;
    w_topo_.latency_sum += latency;
    w_topo_.latencies.push_back(latency);
  });
  acker_.set_on_fail([this](std::uint64_t, std::size_t) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    ++w_topo_.failed;
  });

  core_.open_components();
}

AsyncEngine::~AsyncEngine() { stop(); }

double AsyncEngine::seconds_since_start(std::chrono::steady_clock::time_point tp) const {
  return std::chrono::duration<double>(tp - start_time_).count();
}

double AsyncEngine::now_seconds() const {
  return seconds_since_start(std::chrono::steady_clock::now());
}

void AsyncEngine::start() {
  if (started_) throw std::logic_error("AsyncEngine::start called twice");
  started_ = true;
  running_.store(true);
  start_time_ = std::chrono::steady_clock::now();
  auto window = to_duration(config_.window_seconds);
  for (auto& t : tasks_) {
    t.next_spout_poll = start_time_;
    t.next_window = start_time_ + window;
  }
  // Arm the initial window tick for every bolt; subsequent ticks are
  // re-armed by the window branch of step_task.
  for (std::size_t gid = 0; gid < tasks_.size(); ++gid) {
    if (!core_.task(gid).spout) {
      loop_->schedule_at(static_cast<std::uint32_t>(gid), tasks_[gid].next_window);
    }
  }
  loop_->start();
  // Kick the spouts; each step re-arms its own pacing timer.
  for (std::size_t gid = 0; gid < tasks_.size(); ++gid) {
    if (core_.task(gid).spout) loop_->notify(static_cast<std::uint32_t>(gid));
  }
  metrics_thread_ = std::thread([this] { metrics_loop(); });
}

void AsyncEngine::stop() {
  running_.store(false);
  if (loop_) loop_->stop();
  if (metrics_thread_.joinable()) metrics_thread_.join();
}

void AsyncEngine::run_for(std::chrono::milliseconds duration) {
  start();
  std::this_thread::sleep_for(duration);
  stop();
}

EventLoop::StepResult AsyncEngine::step_task(std::uint32_t task_id, std::size_t /*slot*/) {
  if (!running_.load(std::memory_order_relaxed)) return EventLoop::StepResult::kIdle;
  TaskAsync& task = tasks_[task_id];
  std::size_t owner = task_worker_[task_id].load(std::memory_order_relaxed);
  if (!workers_[owner].alive.load(std::memory_order_relaxed)) {
    // Dead owner: only possible during a total outage or the short window
    // before crash reassignment lands. Keep probing so spout pacing and
    // window chains survive until the task is re-placed or restarted.
    loop_->schedule_at(task_id, std::chrono::steady_clock::now() + kDeadProbe);
    return EventLoop::StepResult::kIdle;
  }
  if (gated(task_id)) return EventLoop::StepResult::kSuspend;

  runtime::TaskInfo& info = core_.task(task_id);
  auto now = std::chrono::steady_clock::now();
  if (info.spout) {
    if (now >= task.next_spout_poll) {
      spout_step(task, task_id, now);
      loop_->schedule_at(task_id, task.next_spout_poll);
      if (gated(task_id)) return EventLoop::StepResult::kSuspend;
    }
    // A notify before the pacing deadline (stale timer, resume) just goes
    // back to idle; the armed timer delivers the next poll.
    return EventLoop::StepResult::kIdle;
  }

  if (now >= task.next_window) {
    task.next_window += to_duration(config_.window_seconds);
    auto* collector = static_cast<Collector*>(task.collector.get());
    collector->clear_context();
    info.bolt->on_window(seconds_since_start(now), *collector);
    flush_emits(task_id);
    loop_->schedule_at(task_id, task.next_window);
    if (gated(task_id)) return EventLoop::StepResult::kSuspend;
  }

  for (std::size_t i = 0; i < kMaxBatchesPerStep; ++i) {
    if (!bolt_step(task, task_id, owner)) break;
    if (gated(task_id)) return EventLoop::StepResult::kSuspend;
  }
  bool more;
  {
    std::lock_guard<std::mutex> lock(task.queue->mutex);
    more = !task.queue->items.empty();
  }
  return more ? EventLoop::StepResult::kYield : EventLoop::StepResult::kIdle;
}

void AsyncEngine::metrics_loop() {
  auto window = to_duration(config_.window_seconds);
  auto next = start_time_ + window;
  while (running_.load(std::memory_order_relaxed)) {
    auto now = std::chrono::steady_clock::now();
    if (now < next) {
      std::this_thread::sleep_for(std::min<std::chrono::steady_clock::duration>(
          next - now, kMetricsPoll));
      continue;
    }
    sample_window(now);
    next += window;
  }
}

void AsyncEngine::sample_window(std::chrono::steady_clock::time_point now) {
  dsps::WindowSample sample;
  sample.time = seconds_since_start(now);
  sample.window = config_.window_seconds;

  std::vector<std::vector<std::size_t>> worker_tasks;
  {
    std::lock_guard<std::mutex> lock(assignment_mutex_);
    worker_tasks = core_.worker_tasks();
  }

  std::vector<runtime::WorkerCounters> worker_acc(config_.workers);
  std::uint64_t win_overflow = 0;
  sample.tasks.reserve(tasks_.size());
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    TaskAsync& t = tasks_[i];
    runtime::TaskCounters c;
    c.executed = t.w_executed.exchange(0, std::memory_order_relaxed);
    c.emitted = t.w_emitted.exchange(0, std::memory_order_relaxed);
    c.received = t.w_received.exchange(0, std::memory_order_relaxed);
    c.dropped = t.w_dropped.exchange(0, std::memory_order_relaxed);
    c.exec_time = static_cast<double>(t.w_exec_ns.exchange(0, std::memory_order_relaxed)) * 1e-9;
    c.queue_wait = static_cast<double>(t.w_wait_ns.exchange(0, std::memory_order_relaxed)) * 1e-9;
    if (flow_.bounded()) {
      c.dropped_overflow = flow_.take_overflow_drops(i);
      c.bp_stall = flow_.take_stall(i);
      win_overflow += c.dropped_overflow;
    }

    const runtime::TaskInfo& info = core_.task(i);
    std::size_t owner = task_worker_[i].load(std::memory_order_relaxed);
    runtime::WorkerCounters& wc = worker_acc[owner];
    wc.executed += c.executed;
    wc.emitted += c.emitted;
    wc.received += c.received;
    wc.exec_time_sum += c.exec_time;
    wc.queue_wait_sum += c.queue_wait;
    wc.service_seconds += c.exec_time;
    wc.bp_stall += c.bp_stall;

    std::size_t queue_len;
    {
      std::lock_guard<std::mutex> lock(t.queue->mutex);
      queue_len = t.queue->tuples;
    }
    sample.tasks.push_back(runtime::finalize_task_window(
        i, core_.components()[info.component].name, info.comp_index, owner, c, queue_len));
  }

  sample.workers.reserve(config_.workers);
  for (std::size_t w = 0; w < config_.workers; ++w) {
    std::size_t qlen = 0;
    for (std::size_t t : worker_tasks[w]) qlen += sample.tasks[t].queue_len;
    sample.workers.push_back(runtime::finalize_worker_window(
        w, /*machine=*/0, worker_tasks[w].size(), worker_acc[w], qlen, config_.window_seconds));
  }

  // No machine model under the event-loop runtime, but the forecast features
  // want a machine row for every worker's machine — synthesize machine 0
  // (where every worker reports) from the worker windows.
  {
    dsps::MachineWindowStats machine;
    double busy = 0.0;
    for (const auto& ws : sample.workers) busy += ws.cpu_share;
    double cores =
        static_cast<double>(std::max(1u, std::thread::hardware_concurrency()));
    machine.machine = 0;
    machine.cpu_util = std::min(1.0, busy / cores);
    machine.load = busy;
    sample.machines.push_back(machine);
  }

  // Scheduler observability: window deltas of the loop/limiter lifetime
  // counters (metrics thread only, so a plain prev-snapshot suffices).
  dsps::SchedulerWindowStats totals = scheduler_totals();
  sample.scheduler.wakeups_productive = totals.wakeups_productive - sched_prev_.wakeups_productive;
  sample.scheduler.wakeups_spurious = totals.wakeups_spurious - sched_prev_.wakeups_spurious;
  sample.scheduler.steals = totals.steals - sched_prev_.steals;
  sample.scheduler.suspends = totals.suspends - sched_prev_.suspends;
  sample.scheduler.resumes = totals.resumes - sched_prev_.resumes;
  sample.scheduler.ready_depth = loop_->ready_depth();
  sample.scheduler.ready_peak = totals.ready_peak;
  sched_prev_ = totals;

  {
    std::lock_guard<std::mutex> lock(acker_mutex_);
    w_topo_.dropped_overflow += win_overflow;
    acker_.sweep(seconds_since_start(now));
    sample.topology =
        runtime::finalize_topology_window(w_topo_, config_.window_seconds, acker_.pending());
  }

  history_.push(std::move(sample));

  if (control_hook_ && control_interval_ > 0.0) {
    std::size_t every = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::llround(control_interval_ / config_.window_seconds)));
    if (history_.total() % every == 0) control_hook_(*this);
  }
}

void AsyncEngine::spout_step(TaskAsync& task, std::size_t task_id,
                             std::chrono::steady_clock::time_point now) {
  dsps::Spout& spout = *core_.task(task_id).spout;
  double t_now = seconds_since_start(now);
  double delay = spout.next_delay(t_now);

  std::size_t budget = 0;
  const std::size_t cap = spout_cap_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(acker_mutex_);
    std::size_t pending = acker_.pending_for(task_id);
    budget = pending >= cap ? 0 : cap - pending;
  }
  budget = std::min(budget, config_.batch_size);
  if (budget == 0) {
    task.next_spout_poll = now + to_duration(std::max(delay, 1e-6));
    return;
  }

  thread_local runtime::TupleBatch batch;
  batch.clear();
  batch.stream = dsps::kDefaultStream;
  while (batch.size() < budget) {
    if (!batch.empty()) delay += spout.next_delay(t_now);
    std::optional<dsps::Values> vals = spout.next(t_now);
    if (!vals.has_value()) break;
    std::uint64_t root = next_tuple_id_.fetch_add(1, std::memory_order_relaxed);
    batch.push_row(0, root, t_now, std::move(*vals));
  }
  task.next_spout_poll = now + to_duration(std::max(delay, 1e-6));
  if (batch.empty()) return;

  {
    std::lock_guard<std::mutex> lock(acker_mutex_);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      acker_.register_root(batch.root_ids[i], t_now, task_id);
    }
    w_topo_.roots_emitted += batch.size();
  }
  roots_emitted_.fetch_add(batch.size(), std::memory_order_relaxed);
  route_emit_batch(task_id, batch);
  {
    std::lock_guard<std::mutex> lock(acker_mutex_);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      acker_.discard_if_unanchored(batch.root_ids[i], t_now);
    }
    acker_.sweep(t_now);
  }
}

bool AsyncEngine::bolt_step(TaskAsync& task, std::size_t task_id, std::size_t worker) {
  QueuedBatch qb;
  {
    std::lock_guard<std::mutex> lock(task.queue->mutex);
    if (task.queue->items.empty()) return false;
    qb = std::move(task.queue->items.front());
    task.queue->items.pop_front();
    task.queue->tuples -= qb.batch.size();
  }
  const std::size_t n = qb.batch.size();
  if (flow_.bounded()) {
    // The release listener fires inline here: parked batches toward this
    // task deliver (re-entering its queue mutex, which we no longer hold)
    // and their suspended emitters are resumed.
    flow_.release_n(task_id, n);
  }
  auto begin = std::chrono::steady_clock::now();
  task.w_wait_ns.fetch_add(
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(begin - qb.enqueued).count()) *
          n,
      std::memory_order_relaxed);

  auto* collector = static_cast<Collector*>(task.collector.get());
  dsps::Bolt* bolt = core_.task(task_id).bolt.get();
  thread_local dsps::Tuple probe;
  probe.stream = qb.batch.stream;
  for (std::size_t i = 0; i < n; ++i) {
    collector->set_context(qb.batch.root_ids[i], qb.batch.root_emit_times[i]);
    qb.batch.borrow_row(i, probe);
    bolt->execute(probe, *collector);
  }
  collector->clear_context();
  // Route out buffered emits BEFORE acking the inputs (children must
  // anchor before the parent ack). Under kBlockUpstream some of these may
  // park — the caller checks gated() after this step.
  flush_emits(task_id);

  auto done = std::chrono::steady_clock::now();
  double factor = workers_[worker].slowdown.load(std::memory_order_relaxed);
  if (factor > 1.0) {
    auto deadline =
        done + to_duration(std::chrono::duration<double>(done - begin).count() * (factor - 1.0));
    while (std::chrono::steady_clock::now() < deadline &&
           running_.load(std::memory_order_relaxed)) {
    }
    done = std::chrono::steady_clock::now();
  }
  task.w_exec_ns.fetch_add(
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(done - begin).count()),
      std::memory_order_relaxed);
  task.executed.fetch_add(n, std::memory_order_relaxed);
  task.w_executed.fetch_add(n, std::memory_order_relaxed);

  bool any_anchored = false;
  for (std::size_t i = 0; i < n; ++i) {
    any_anchored = any_anchored || qb.batch.root_ids[i] != 0;
  }
  if (any_anchored) {
    std::lock_guard<std::mutex> lock(acker_mutex_);
    acker_.ack_batch(qb.batch.root_ids.data(), qb.batch.ids.data(), n,
                     seconds_since_start(std::chrono::steady_clock::now()));
  }
  return true;
}

void AsyncEngine::buffer_emit(std::size_t task, dsps::Tuple&& t) {
  runtime::TupleBatch* full = tasks_[task].emits.append(std::move(t), config_.batch_size);
  if (full != nullptr) {
    route_emit_batch(task, *full);
    full->clear();
  }
}

void AsyncEngine::flush_emits(std::size_t task) {
  tasks_[task].emits.flush([&](runtime::TupleBatch& b) { route_emit_batch(task, b); });
}

void AsyncEngine::route_emit_batch(std::size_t src_task, runtime::TupleBatch& batch) {
  tasks_[src_task].w_emitted.fetch_add(batch.size(), std::memory_order_relaxed);
  thread_local runtime::BatchRouteScratch scratch;
  core_.route_batch(
      src_task, batch, scratch,
      [&](std::size_t dest, const std::vector<std::uint32_t>& rows, bool may_move) {
        runtime::TupleBatch copy;
        copy.stream = batch.stream;
        if (may_move) {
          copy.steal_rows(batch, rows);
        } else {
          copy.append_rows(batch, rows);
        }
        const std::size_t m = copy.size();
        std::uint64_t base = next_tuple_id_.fetch_add(m, std::memory_order_relaxed);
        bool any_anchored = false;
        for (std::size_t k = 0; k < m; ++k) {
          copy.ids[k] = base + k;
          any_anchored = any_anchored || copy.root_ids[k] != 0;
        }
        if (any_anchored) {
          std::lock_guard<std::mutex> lock(acker_mutex_);
          acker_.add_anchors(copy.root_ids.data(), copy.ids.data(), m);
        }
        enqueue(src_task, dest, std::move(copy));
      });
}

void AsyncEngine::deliver_admitted(std::size_t src, std::size_t dest,
                                   runtime::TupleBatch&& b) {
  (void)src;
  QueuedBatch qb;
  qb.batch = std::move(b);
  qb.enqueued = std::chrono::steady_clock::now();
  const std::size_t m = qb.batch.size();
  TaskQueue& q = *tasks_[dest].queue;
  {
    std::lock_guard<std::mutex> lock(q.mutex);
    // Destination-side re-coalescing, same as RtEngine::enqueue.
    bool merged = false;
    if (config_.batch_size > 1 && !q.items.empty()) {
      runtime::TupleBatch& tail = q.items.back().batch;
      if (tail.stream == qb.batch.stream &&
          tail.size() + qb.batch.size() <= config_.batch_size) {
        tail.append_all(std::move(qb.batch));
        merged = true;
      }
    }
    if (!merged) q.items.push_back(std::move(qb));
    q.tuples += m;
    q.high_water = std::max(q.high_water, q.tuples);
  }
  loop_->notify(static_cast<std::uint32_t>(dest));
}

void AsyncEngine::enqueue(std::size_t src_task, std::size_t dest, runtime::TupleBatch&& b) {
  TaskAsync& task = tasks_[dest];
  task.w_received.fetch_add(b.size(), std::memory_order_relaxed);
  double p =
      workers_[task_worker_[dest].load(std::memory_order_relaxed)].drop_prob.load(
          std::memory_order_relaxed);
  if (p > 0.0) {
    std::size_t kept = 0;
    for (std::size_t i = 0; i < b.size(); ++i) {
      if (drop_rng().bernoulli(p)) continue;
      b.move_row(i, kept);
      ++kept;
    }
    std::size_t dropped = b.size() - kept;
    if (dropped > 0) {
      task.w_dropped.fetch_add(dropped, std::memory_order_relaxed);
      b.truncate(kept);
    }
    if (b.empty()) return;
  }

  if (!flow_.bounded()) {
    deliver_admitted(src_task, dest, std::move(b));
    return;
  }

  if (flow_.config().policy == runtime::OverflowPolicy::kDropNewest) {
    // Admit the leading rows that fit, shed the tail — check + acquire +
    // push under the queue mutex (like RtEngine) so concurrent producers
    // cannot over-admit past the capacity.
    const std::size_t cap = flow_.config().queue_capacity;
    const std::size_t m = b.size();
    TaskQueue& q = *task.queue;
    QueuedBatch qb;
    qb.batch = std::move(b);
    qb.enqueued = std::chrono::steady_clock::now();
    std::size_t shed;
    {
      std::lock_guard<std::mutex> lock(q.mutex);
      const std::size_t free = cap > q.tuples ? cap - q.tuples : 0;
      if (free == 0) {
        shed = m;
      } else {
        shed = m > free ? m - free : 0;
        if (shed > 0) qb.batch.truncate(free);
        flow_.acquire_n(dest, qb.batch.size());
        q.tuples += qb.batch.size();
        q.high_water = std::max(q.high_water, q.tuples);
        bool merged = false;
        if (config_.batch_size > 1 && !q.items.empty()) {
          runtime::TupleBatch& tail = q.items.back().batch;
          if (tail.stream == qb.batch.stream &&
              tail.size() + qb.batch.size() <= config_.batch_size) {
            tail.append_all(std::move(qb.batch));
            merged = true;
          }
        }
        if (!merged) q.items.push_back(std::move(qb));
      }
    }
    if (shed > 0) flow_.count_overflow_drops(dest, shed);
    if (shed < m) loop_->notify(static_cast<std::uint32_t>(dest));
    return;
  }

  // kBlockUpstream: whole-batch admission through the limiter — either
  // delivered now or parked FIFO with the emitting task gated. No thread
  // blocks; the caller's step finishes and returns kSuspend.
  limiter_->admit_or_park(src_task, dest, std::move(b));
}

RtTotals AsyncEngine::totals() const {
  RtTotals t;
  t.roots_emitted = roots_emitted_.load();
  t.acked = acked_.load();
  t.failed = failed_.load();
  for (const auto& task : tasks_) t.executed += task.executed.load();
  t.lost = lost_.load();
  t.dropped_overflow = flow_.total_dropped_overflow();
  t.worker_crashes = crashes_.load();
  t.worker_restarts = restarts_.load();
  t.worker_retires = retires_.load();
  t.worker_adds = adds_.load();
  t.task_migrations = migrations_.load();
  dsps::SchedulerWindowStats s = scheduler_totals();
  t.wakeups_productive = s.wakeups_productive;
  t.wakeups_spurious = s.wakeups_spurious;
  t.steals = s.steals;
  t.suspends = s.suspends;
  t.resumes = s.resumes;
  t.ready_peak = s.ready_peak;
  return t;
}

dsps::SchedulerWindowStats AsyncEngine::scheduler_totals() const {
  dsps::SchedulerWindowStats s;
  EventLoopStats ls = loop_->stats();
  s.wakeups_productive = ls.wakeups_productive;
  s.wakeups_spurious = ls.wakeups_spurious;
  s.steals = ls.steals;
  s.ready_depth = loop_->ready_depth();
  s.ready_peak = ls.ready_peak;
  if (limiter_) {
    s.suspends = limiter_->suspends();
    s.resumes = limiter_->resumes();
  }
  return s;
}

double AsyncEngine::mean_complete_latency() const {
  std::uint64_t n = acked_.load();
  if (n == 0) return 0.0;
  return static_cast<double>(latency_ns_sum_.load()) / static_cast<double>(n) * 1e-9;
}

std::vector<std::uint64_t> AsyncEngine::executed_per_task() const {
  std::vector<std::uint64_t> out;
  out.reserve(tasks_.size());
  for (const auto& t : tasks_) out.push_back(t.executed.load());
  return out;
}

std::pair<std::size_t, std::size_t> AsyncEngine::tasks_of(const std::string& component) const {
  return core_.tasks_of(component);
}

std::size_t AsyncEngine::worker_of_task(std::size_t global_task) const {
  return task_worker_.at(global_task).load(std::memory_order_relaxed);
}

std::vector<std::size_t> AsyncEngine::workers_of(const std::string& component) const {
  return core_.workers_of(component);
}

std::size_t AsyncEngine::queue_length_of_task(std::size_t global_task) const {
  TaskQueue& q = *tasks_.at(global_task).queue;
  std::lock_guard<std::mutex> lock(q.mutex);
  return q.tuples;
}

std::shared_ptr<dsps::DynamicRatio> AsyncEngine::dynamic_ratio(const std::string& from,
                                                               const std::string& to) const {
  return runtime::find_dynamic_ratio(topo_, from, to);
}

std::vector<runtime::DynamicEdge> AsyncEngine::dynamic_edges() const {
  return runtime::list_dynamic_edges(topo_);
}

void AsyncEngine::set_control_hook(double interval,
                                   runtime::ControlSurface::ControlHook hook) {
  if (started_) throw std::logic_error("AsyncEngine::set_control_hook: set before start()");
  control_interval_ = interval;
  control_hook_ = std::move(hook);
}

void AsyncEngine::set_max_spout_pending(std::size_t cap) {
  if (config_.flow.policy == runtime::OverflowPolicy::kBlockUpstream && cap == 0) {
    throw std::invalid_argument(
        "AsyncEngine::set_max_spout_pending: kBlockUpstream needs a cap > 0 — "
        "the pending-tree limit is the end-to-end cap on parked emits");
  }
  spout_cap_.store(cap, std::memory_order_relaxed);
}

void AsyncEngine::set_worker_slowdown(std::size_t worker, double factor) {
  workers_.at(worker).slowdown.store(std::max(1.0, factor), std::memory_order_relaxed);
}

void AsyncEngine::set_worker_drop_prob(std::size_t worker, double probability) {
  workers_.at(worker).drop_prob.store(std::clamp(probability, 0.0, 1.0),
                                      std::memory_order_relaxed);
}

double AsyncEngine::worker_slowdown(std::size_t worker) const {
  return workers_.at(worker).slowdown.load(std::memory_order_relaxed);
}

double AsyncEngine::worker_drop_prob(std::size_t worker) const {
  return workers_.at(worker).drop_prob.load(std::memory_order_relaxed);
}

void AsyncEngine::crash_worker(std::size_t worker) {
  std::vector<std::size_t> moved;
  {
    std::lock_guard<std::mutex> lock(assignment_mutex_);
    WorkerRt& w = workers_.at(worker);
    if (!w.alive.load(std::memory_order_relaxed)) return;
    w.alive.store(false, std::memory_order_relaxed);
    w.slowdown.store(1.0, std::memory_order_relaxed);
    w.drop_prob.store(0.0, std::memory_order_relaxed);
    crashes_.fetch_add(1, std::memory_order_relaxed);
    // Everything queued at the dead worker's executors is discarded (those
    // roots fail at the ack timeout). A batch mid-step on a loop thread
    // completes — same documented tolerance as RtEngine. The credit
    // release below re-delivers any batches parked toward the wiped
    // queues, the async analogue of RtEngine's dead-owner push bypass.
    for (std::size_t t : core_.worker_tasks()[worker]) {
      TaskQueue& q = *tasks_[t].queue;
      std::size_t wiped;
      {
        std::lock_guard<std::mutex> qlock(q.mutex);
        wiped = q.tuples;
        lost_.fetch_add(wiped, std::memory_order_relaxed);
        q.items.clear();
        q.tuples = 0;
      }
      if (flow_.bounded()) flow_.release_n(t, wiped);
    }
    // Reassignment candidates: alive AND active — a retired worker must
    // not pick up a dead one's executors.
    std::vector<bool> alive(workers_.size(), false);
    bool any_alive = false;
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      alive[i] = workers_[i].alive.load(std::memory_order_relaxed) &&
                 workers_[i].active.load(std::memory_order_relaxed);
      any_alive = any_alive || alive[i];
    }
    if (any_alive) {
      for (const dsps::TaskMove& m :
           dsps::plan_crash_reassignment(core_.worker_tasks(), worker, alive)) {
        core_.reassign_task(m.task, m.to_worker);
        task_worker_[m.task].store(m.to_worker, std::memory_order_relaxed);
        moved.push_back(m.task);
      }
    }
  }
  // Wake the re-placed executors (outside the assignment mutex): spouts
  // re-arm their pacing chain, bolts drain whatever arrives next.
  for (std::size_t t : moved) loop_->notify(static_cast<std::uint32_t>(t));
}

void AsyncEngine::restart_worker(std::size_t worker) {
  std::vector<std::size_t> reclaimed;
  {
    std::lock_guard<std::mutex> lock(assignment_mutex_);
    WorkerRt& w = workers_.at(worker);
    if (w.alive.load(std::memory_order_relaxed)) return;
    w.alive.store(true, std::memory_order_relaxed);
    restarts_.fetch_add(1, std::memory_order_relaxed);
    // Retired: rejoin the pool but host nothing until add_worker().
    if (!w.active.load(std::memory_order_relaxed)) return;
    for (std::size_t t = 0; t < core_.task_count(); ++t) {
      if (assignment_.task_to_worker[t] == worker && core_.task(t).worker != worker) {
        core_.reassign_task(t, worker);
        task_worker_[t].store(worker, std::memory_order_relaxed);
        reclaimed.push_back(t);
      }
    }
  }
  for (std::size_t t : reclaimed) loop_->notify(static_cast<std::uint32_t>(t));
}

bool AsyncEngine::worker_alive(std::size_t worker) const {
  return workers_.at(worker).alive.load(std::memory_order_relaxed);
}

bool AsyncEngine::worker_active(std::size_t worker) const {
  return workers_.at(worker).active.load(std::memory_order_relaxed);
}

std::vector<std::vector<std::size_t>> AsyncEngine::worker_task_snapshot() const {
  std::lock_guard<std::mutex> lock(assignment_mutex_);
  return core_.worker_tasks();
}

void AsyncEngine::add_worker(std::size_t worker) {
  std::lock_guard<std::mutex> lock(assignment_mutex_);
  WorkerRt& w = workers_.at(worker);
  if (w.active.load(std::memory_order_relaxed)) return;
  w.active.store(true, std::memory_order_relaxed);
  adds_.fetch_add(1, std::memory_order_relaxed);
}

void AsyncEngine::retire_worker(std::size_t worker) {
  std::vector<std::size_t> moved;
  {
    std::lock_guard<std::mutex> lock(assignment_mutex_);
    WorkerRt& w = workers_.at(worker);
    if (!w.active.load(std::memory_order_relaxed)) return;
    w.active.store(false, std::memory_order_relaxed);
    if (w.alive.load(std::memory_order_relaxed) && !core_.worker_tasks()[worker].empty()) {
      std::vector<bool> hosts(workers_.size(), false);
      bool any_host = false;
      for (std::size_t i = 0; i < workers_.size(); ++i) {
        hosts[i] = workers_[i].alive.load(std::memory_order_relaxed) &&
                   workers_[i].active.load(std::memory_order_relaxed);
        any_host = any_host || hosts[i];
      }
      if (!any_host) {
        w.active.store(true, std::memory_order_relaxed);  // fail closed
        throw std::invalid_argument("retire_worker: no active worker left to host worker " +
                                    std::to_string(worker) + "'s executors");
      }
      // Graceful drain via the shared deterministic policy; queued tuples
      // travel with each task.
      for (const dsps::TaskMove& m :
           dsps::plan_crash_reassignment(core_.worker_tasks(), worker, hosts)) {
        core_.reassign_task(m.task, m.to_worker);
        task_worker_[m.task].store(m.to_worker, std::memory_order_relaxed);
        migrations_.fetch_add(1, std::memory_order_relaxed);
        moved.push_back(m.task);
      }
    }
    retires_.fetch_add(1, std::memory_order_relaxed);
  }
  // Resume the migrated executors on their new hosts (outside the mutex).
  for (std::size_t t : moved) loop_->notify(static_cast<std::uint32_t>(t));
}

void AsyncEngine::migrate_tasks(const std::vector<dsps::TaskMove>& moves) {
  std::vector<std::size_t> moved;
  {
    std::lock_guard<std::mutex> lock(assignment_mutex_);
    // Fail closed: validate the whole batch before touching placement.
    for (std::size_t i = 0; i < moves.size(); ++i) {
      const dsps::TaskMove& m = moves[i];
      const std::string field = "migrate_tasks: moves[" + std::to_string(i) + "]";
      if (m.task >= core_.task_count()) {
        throw std::invalid_argument(field + ".task: no task " + std::to_string(m.task));
      }
      if (m.to_worker >= workers_.size()) {
        throw std::invalid_argument(field + ".to_worker: no worker " +
                                    std::to_string(m.to_worker));
      }
      if (!workers_[m.to_worker].alive.load(std::memory_order_relaxed)) {
        throw std::invalid_argument(field + ".to_worker: worker " +
                                    std::to_string(m.to_worker) + " is dead");
      }
      if (!workers_[m.to_worker].active.load(std::memory_order_relaxed)) {
        throw std::invalid_argument(field + ".to_worker: worker " +
                                    std::to_string(m.to_worker) + " is retired");
      }
    }
    for (const dsps::TaskMove& m : moves) {
      if (core_.task(m.task).worker == m.to_worker) continue;
      core_.reassign_task(m.task, m.to_worker);
      task_worker_[m.task].store(m.to_worker, std::memory_order_relaxed);
      migrations_.fetch_add(1, std::memory_order_relaxed);
      moved.push_back(m.task);
    }
  }
  for (std::size_t t : moved) loop_->notify(static_cast<std::uint32_t>(t));
}

std::string AsyncEngine::placement_audit() const {
  std::lock_guard<std::mutex> lock(assignment_mutex_);
  std::string audit = core_.placement_audit();
  if (!audit.empty()) return audit;
  bool any_alive = false;
  bool any_active = false;
  for (const auto& w : workers_) {
    bool a = w.alive.load(std::memory_order_relaxed);
    any_alive = any_alive || a;
    any_active = any_active || (a && w.active.load(std::memory_order_relaxed));
  }
  for (std::size_t t = 0; t < core_.task_count(); ++t) {
    std::size_t owner = core_.task(t).worker;
    if (task_worker_[t].load(std::memory_order_relaxed) != owner) {
      return "task " + std::to_string(t) + "'s placement mirror is stale";
    }
    if (any_alive && !workers_[owner].alive.load(std::memory_order_relaxed)) {
      return "task " + std::to_string(t) + " is placed on dead worker " + std::to_string(owner);
    }
    if (any_active && workers_[owner].alive.load(std::memory_order_relaxed) &&
        !workers_[owner].active.load(std::memory_order_relaxed)) {
      return "task " + std::to_string(t) + " is placed on retired worker " +
             std::to_string(owner);
    }
  }
  return {};
}

}  // namespace repro::rt
