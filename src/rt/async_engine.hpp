#pragma once
// Async event-loop runtime: the third driver over the shared runtime core
// (after the discrete-event simulator and the thread-per-worker rt
// engine). Executors are scheduler *tasks*, not threads: an enqueue event
// notifies the destination task runnable, a small pool of loop threads
// runs bounded steps off work-stealing ready queues, and deadlines (spout
// pacing, window ticks) ride a hashed timer wheel — see rt/event_loop.hpp.
//
// Backpressure (kBlockUpstream) is the structural difference from
// RtEngine: instead of blocking the emitting worker thread on the
// destination queue's condition variable (sliced <=20ms waits, bp_max_wait
// escape valve, self-cycle soft push), the InflightLimiter parks the
// emitted batch and *suspends the emitting task* until the credit release
// re-queues it. No thread ever blocks on a full queue, so hundreds of
// logical workers run on a handful of loop threads, thread wait cycles
// cannot form, and the queue bound is never overshot.
//
// The "workers" of the config stay the placement / fault / crash domain
// (same deterministic interleaved schedule and crash reassignment as the
// other backends) but are decoupled from OS threads: AsyncConfig::threads
// sizes the loop pool independently.
#include <atomic>
#include <chrono>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "dsps/acker.hpp"
#include "dsps/metrics.hpp"
#include "dsps/scheduler.hpp"
#include "dsps/topology.hpp"
#include "rt/event_loop.hpp"
#include "rt/inflight_limiter.hpp"
#include "rt/rt_engine.hpp"
#include "runtime/control_surface.hpp"
#include "runtime/flow_control.hpp"
#include "runtime/topology_state.hpp"
#include "runtime/tuple_batch.hpp"
#include "runtime/window_stats.hpp"

namespace repro::rt {

/// RtConfig plus the loop-pool size. `bp_max_wait` is ignored (there is no
/// blocking wait to bound); everything else keeps RtEngine semantics.
struct AsyncConfig : RtConfig {
  /// Event-loop OS threads. 0 (default) picks
  /// min(workers, hardware_concurrency) — the logical worker count is a
  /// placement domain, not a thread count, so oversubscribing cores is
  /// never useful here.
  std::size_t threads = 0;
};

class AsyncEngine : public runtime::ControlSurface {
 public:
  AsyncEngine(dsps::Topology topology, AsyncConfig config);
  ~AsyncEngine() override;

  AsyncEngine(const AsyncEngine&) = delete;
  AsyncEngine& operator=(const AsyncEngine&) = delete;

  /// Start the loop pool + metrics thread. Call once.
  void start();
  /// Signal shutdown and join all threads. Safe to call repeatedly.
  void stop();
  /// Convenience: start, run for a wall-clock duration, stop.
  void run_for(std::chrono::milliseconds duration);

  RtTotals totals() const;
  double mean_complete_latency() const;
  std::vector<std::uint64_t> executed_per_task() const;

  // --- control surface -----------------------------------------------
  std::string backend_name() const override { return "async"; }
  double now_seconds() const override;
  const runtime::WindowHistory& window_history() const override { return history_; }
  std::size_t worker_count() const override { return config_.workers; }
  std::pair<std::size_t, std::size_t> tasks_of(const std::string& component) const override;
  std::size_t worker_of_task(std::size_t global_task) const override;
  std::vector<std::size_t> workers_of(const std::string& component) const override;
  std::size_t queue_length_of_task(std::size_t global_task) const override;
  const runtime::FlowControl* flow_control() const override { return &flow_; }
  dsps::SchedulerWindowStats scheduler_totals() const override;
  std::shared_ptr<dsps::DynamicRatio> dynamic_ratio(const std::string& from,
                                                    const std::string& to) const override;
  std::vector<runtime::DynamicEdge> dynamic_edges() const override;
  void set_control_hook(double interval, runtime::ControlSurface::ControlHook hook) override;
  bool supports_fault_injection() const override { return true; }
  void set_worker_slowdown(std::size_t worker, double factor) override;
  void set_worker_drop_prob(std::size_t worker, double probability) override;
  double worker_slowdown(std::size_t worker) const override;
  double worker_drop_prob(std::size_t worker) const override;
  // Spout rate control (thread-safe): the credit cap lives in an atomic
  // the spout steps read, so a rate controller can retune it mid-run.
  bool supports_spout_throttle() const override { return true; }
  std::size_t max_spout_pending() const override {
    return spout_cap_.load(std::memory_order_relaxed);
  }
  void set_max_spout_pending(std::size_t cap) override;
  bool supports_crash_recovery() const override { return true; }
  void crash_worker(std::size_t worker) override;
  void restart_worker(std::size_t worker) override;
  bool worker_alive(std::size_t worker) const override;
  // Elastic scaling (thread-safe). Graceful migration needs no lease
  // here: the EventLoop's single-runner guarantee already serializes
  // steps of a task, so placement mutates under assignment_mutex_ and the
  // moved tasks are re-notified (outside the mutex) so the loop resumes
  // them on their preserved queues.
  bool supports_elastic_scaling() const override { return true; }
  void add_worker(std::size_t worker) override;
  void retire_worker(std::size_t worker) override;
  void migrate_tasks(const std::vector<dsps::TaskMove>& moves) override;
  bool worker_active(std::size_t worker) const override;
  std::vector<std::vector<std::size_t>> worker_task_snapshot() const override;
  std::string placement_audit() const;

 private:
  struct QueuedBatch {
    runtime::TupleBatch batch;
    std::chrono::steady_clock::time_point enqueued;
  };

  /// Plain mutex-guarded in-queue; no condition variable — wakeups go
  /// through EventLoop::notify, so nothing ever waits here.
  struct TaskQueue {
    std::mutex mutex;
    std::deque<QueuedBatch> items;
    std::size_t tuples = 0;
    std::size_t high_water = 0;
  };

  class Collector;

  /// Per-task state. Single-runner guarantee comes from the EventLoop's
  /// task state machine (a task is never stepped by two loop threads at
  /// once), so collector/emits/next_* need no lease.
  struct TaskAsync {
    std::unique_ptr<Collector> collector;
    std::unique_ptr<TaskQueue> queue;
    runtime::EmitBuffer emits;
    std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> w_executed{0};
    std::atomic<std::uint64_t> w_emitted{0};
    std::atomic<std::uint64_t> w_received{0};
    std::atomic<std::uint64_t> w_dropped{0};
    std::atomic<std::uint64_t> w_exec_ns{0};
    std::atomic<std::uint64_t> w_wait_ns{0};
    std::chrono::steady_clock::time_point next_spout_poll{};
    std::chrono::steady_clock::time_point next_window{};
  };

  struct WorkerRt {
    std::atomic<double> slowdown{1.0};
    std::atomic<double> drop_prob{0.0};
    std::atomic<bool> alive{true};
    /// Elastic-scaling eligibility, orthogonal to alive (see RtEngine).
    std::atomic<bool> active{true};
  };

  EventLoop::StepResult step_task(std::uint32_t task_id, std::size_t slot);
  void metrics_loop();
  void sample_window(std::chrono::steady_clock::time_point now);
  void spout_step(TaskAsync& task, std::size_t task_id,
                  std::chrono::steady_clock::time_point now);
  bool bolt_step(TaskAsync& task, std::size_t task_id, std::size_t worker);
  void buffer_emit(std::size_t task, dsps::Tuple&& t);
  void flush_emits(std::size_t task);
  void route_emit_batch(std::size_t src_task, runtime::TupleBatch& batch);
  void enqueue(std::size_t src_task, std::size_t dest, runtime::TupleBatch&& b);
  /// Push an admitted batch into dest's queue and notify the task
  /// (credits already acquired / not needed). The limiter's deliver hook.
  void deliver_admitted(std::size_t src, std::size_t dest, runtime::TupleBatch&& b);
  double seconds_since_start(std::chrono::steady_clock::time_point tp) const;
  bool gated(std::size_t task) const {
    return limiter_ != nullptr && limiter_->gated(task);
  }

  dsps::Topology topo_;
  AsyncConfig config_;
  dsps::Assignment assignment_;
  runtime::TopologyState core_;
  runtime::FlowControl flow_;
  std::deque<TaskAsync> tasks_;
  std::deque<WorkerRt> workers_;
  mutable std::mutex assignment_mutex_;
  std::deque<std::atomic<std::size_t>> task_worker_;  ///< racy-read placement mirror
  std::unique_ptr<InflightLimiter> limiter_;  ///< kBlockUpstream only
  std::unique_ptr<EventLoop> loop_;
  /// Live spout-throttle cap (initialized from config_.max_spout_pending).
  std::atomic<std::size_t> spout_cap_{0};
  std::atomic<std::uint64_t> lost_{0};
  std::atomic<std::uint64_t> crashes_{0};
  std::atomic<std::uint64_t> restarts_{0};
  std::atomic<std::uint64_t> retires_{0};
  std::atomic<std::uint64_t> adds_{0};
  std::atomic<std::uint64_t> migrations_{0};
  std::thread metrics_thread_;
  std::atomic<bool> running_{false};
  bool started_ = false;
  std::chrono::steady_clock::time_point start_time_{};

  mutable std::mutex acker_mutex_;
  dsps::Acker acker_;
  runtime::TopologyCounters w_topo_;  ///< guarded by acker_mutex_
  std::atomic<std::uint64_t> next_tuple_id_{1};
  std::atomic<std::uint64_t> roots_emitted_{0};
  std::atomic<std::uint64_t> acked_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> latency_ns_sum_{0};

  dsps::SchedulerWindowStats sched_prev_;  ///< metrics thread only: last drained totals

  runtime::WindowHistory history_;  ///< written by metrics thread
  double control_interval_ = 0.0;
  runtime::ControlSurface::ControlHook control_hook_;
};

}  // namespace repro::rt
