#include "rt/rt_engine.hpp"

#include <algorithm>
#include <stdexcept>

namespace repro::rt {

namespace {
constexpr auto kIdleSleep = std::chrono::microseconds(200);
}

/// Per-task collector: routes emits immediately on the calling worker
/// thread (queues are thread-safe).
class RtEngine::Collector : public dsps::OutputCollector {
 public:
  Collector(RtEngine* engine, std::size_t task) : engine_(engine), task_(task) {}

  void emit(dsps::Values values, const std::string& stream) override {
    dsps::Tuple t;
    t.root_id = current_root_;
    t.stream = stream;
    t.values = std::move(values);
    engine_->route_emit(engine_->tasks_[task_], std::move(t), current_root_emit_);
  }

  sim::SimTime now() const override {
    return engine_->seconds_since_start(std::chrono::steady_clock::now());
  }
  std::size_t task_index() const override { return engine_->tasks_[task_].comp_index; }
  std::size_t peer_count() const override {
    return engine_->components_[engine_->tasks_[task_].component].parallelism;
  }

  void set_context(std::uint64_t root, std::chrono::steady_clock::time_point root_emit) {
    current_root_ = root;
    current_root_emit_ = root_emit;
  }
  void clear_context() { current_root_ = 0; }

 private:
  RtEngine* engine_;
  std::size_t task_;
  std::uint64_t current_root_ = 0;
  std::chrono::steady_clock::time_point current_root_emit_{};
};

RtEngine::RtEngine(dsps::Topology topology, RtConfig config)
    : topo_(std::move(topology)), config_(config), acker_(config.ack_timeout) {
  if (config_.workers == 0) throw std::invalid_argument("RtEngine: need workers");

  dsps::Assignment assignment = dsps::interleaved_schedule(topo_, config_.workers, 1);
  worker_tasks_.resize(config_.workers);

  std::size_t first = 0;
  for (const auto& s : topo_.spouts) {
    components_.push_back({s.name, true, first, s.parallelism});
    first += s.parallelism;
  }
  for (const auto& b : topo_.bolts) {
    components_.push_back({b.name, false, first, b.parallelism});
    first += b.parallelism;
  }

  tasks_.resize(topo_.total_tasks());
  std::size_t gid = 0;
  auto init_task = [&](std::size_t comp, std::size_t idx) {
    TaskRt& t = tasks_[gid];
    t.global_id = gid;
    t.component = comp;
    t.comp_index = idx;
    t.worker = assignment.task_to_worker[gid];
    t.collector = std::make_unique<Collector>(this, gid);
    t.queue = std::make_unique<TaskQueue>();
    worker_tasks_[t.worker].push_back(gid);
    ++gid;
  };
  for (std::size_t s = 0; s < topo_.spouts.size(); ++s) {
    for (std::size_t i = 0; i < topo_.spouts[s].parallelism; ++i) {
      init_task(s, i);
      tasks_[gid - 1].spout = topo_.spouts[s].factory();
    }
  }
  for (std::size_t b = 0; b < topo_.bolts.size(); ++b) {
    std::size_t comp = topo_.spouts.size() + b;
    for (std::size_t i = 0; i < topo_.bolts[b].parallelism; ++i) {
      init_task(comp, i);
      tasks_[gid - 1].bolt = topo_.bolts[b].factory();
    }
  }

  // Routes (same wiring as the simulated engine).
  for (std::size_t b = 0; b < topo_.bolts.size(); ++b) {
    std::size_t dest_comp = topo_.spouts.size() + b;
    for (const auto& sub : topo_.bolts[b].subscriptions) {
      std::size_t src_comp = static_cast<std::size_t>(-1);
      for (std::size_t c = 0; c < components_.size(); ++c) {
        if (components_[c].name == sub.from_component) src_comp = c;
      }
      if (src_comp == static_cast<std::size_t>(-1)) {
        throw std::invalid_argument("RtEngine: unknown upstream " + sub.from_component);
      }
      const ComponentRt& src = components_[src_comp];
      const ComponentRt& dst = components_[dest_comp];
      for (std::size_t i = 0; i < src.parallelism; ++i) {
        TaskRt& src_task = tasks_[src.first_task + i];
        std::vector<std::size_t> local;
        for (std::size_t j = 0; j < dst.parallelism; ++j) {
          if (tasks_[dst.first_task + j].worker == src_task.worker) local.push_back(j);
        }
        OutRoute route;
        route.stream = sub.stream;
        route.dest_component = dest_comp;
        route.grouping =
            dsps::make_grouping_state(sub.grouping, dst.parallelism, std::move(local),
                                      0x9000 + 31 * src_task.global_id + 7 * b);
        src_task.routes.push_back(std::move(route));
      }
    }
  }

  acker_.set_on_complete([this](std::uint64_t, double latency, std::size_t) {
    acked_.fetch_add(1, std::memory_order_relaxed);
    latency_ns_sum_.fetch_add(static_cast<std::uint64_t>(latency * 1e9),
                              std::memory_order_relaxed);
  });
  acker_.set_on_fail([this](std::uint64_t, std::size_t) {
    failed_.fetch_add(1, std::memory_order_relaxed);
  });

  for (auto& t : tasks_) {
    const ComponentRt& c = components_[t.component];
    if (t.spout) t.spout->open(t.comp_index, c.parallelism);
    if (t.bolt) t.bolt->prepare(t.comp_index, c.parallelism);
  }
}

RtEngine::~RtEngine() { stop(); }

double RtEngine::seconds_since_start(std::chrono::steady_clock::time_point tp) const {
  return std::chrono::duration<double>(tp - start_time_).count();
}

void RtEngine::start() {
  if (started_) throw std::logic_error("RtEngine::start called twice");
  started_ = true;
  running_.store(true);
  start_time_ = std::chrono::steady_clock::now();
  auto window = std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(config_.window_seconds));
  for (auto& t : tasks_) {
    t.next_spout_poll = start_time_;
    t.next_window = start_time_ + window;
  }
  threads_.reserve(config_.workers);
  for (std::size_t w = 0; w < config_.workers; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

void RtEngine::stop() {
  if (!running_.exchange(false)) {
    // Not running (never started or already stopped): still join leftovers.
  }
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

void RtEngine::run_for(std::chrono::milliseconds duration) {
  start();
  std::this_thread::sleep_for(duration);
  stop();
}

void RtEngine::worker_loop(std::size_t worker) {
  auto window = std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(config_.window_seconds));
  while (running_.load(std::memory_order_relaxed)) {
    bool did_work = false;
    auto now = std::chrono::steady_clock::now();
    for (std::size_t task_id : worker_tasks_[worker]) {
      TaskRt& task = tasks_[task_id];
      if (task.spout) {
        if (now >= task.next_spout_poll) {
          spout_step(task, now);
          did_work = true;
        }
      } else {
        did_work |= bolt_step(task);
        if (now >= task.next_window) {
          task.next_window += window;
          auto* collector = static_cast<Collector*>(task.collector.get());
          collector->clear_context();
          task.bolt->on_window(seconds_since_start(now), *collector);
        }
      }
    }
    if (!did_work) std::this_thread::sleep_for(kIdleSleep);
  }
}

void RtEngine::spout_step(TaskRt& task, std::chrono::steady_clock::time_point now) {
  double t_now = seconds_since_start(now);
  double delay = task.spout->next_delay(t_now);
  task.next_spout_poll =
      now + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(std::max(delay, 1e-6)));

  {
    std::lock_guard<std::mutex> lock(acker_mutex_);
    if (acker_.pending_for(task.global_id) >= config_.max_spout_pending) return;
  }
  std::optional<dsps::Values> vals = task.spout->next(t_now);
  if (!vals.has_value()) return;

  std::uint64_t root = next_tuple_id_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(acker_mutex_);
    acker_.register_root(root, t_now, task.global_id);
  }
  roots_emitted_.fetch_add(1, std::memory_order_relaxed);
  dsps::Tuple t;
  t.root_id = root;
  t.values = std::move(*vals);
  route_emit(task, std::move(t), now);
  {
    std::lock_guard<std::mutex> lock(acker_mutex_);
    acker_.discard_if_unanchored(root, t_now);
    acker_.sweep(t_now);
  }
}

bool RtEngine::bolt_step(TaskRt& task) {
  QueuedTuple qt;
  {
    std::lock_guard<std::mutex> lock(task.queue->mutex);
    if (task.queue->items.empty()) return false;
    qt = std::move(task.queue->items.front());
    task.queue->items.pop_front();
  }
  auto* collector = static_cast<Collector*>(task.collector.get());
  collector->set_context(qt.tuple.root_id, qt.root_emit);
  task.bolt->execute(qt.tuple, *collector);
  collector->clear_context();
  task.executed.fetch_add(1, std::memory_order_relaxed);
  if (qt.tuple.root_id != 0) {
    std::lock_guard<std::mutex> lock(acker_mutex_);
    acker_.ack_tuple(qt.tuple.root_id, qt.tuple.id,
                     seconds_since_start(std::chrono::steady_clock::now()));
  }
  return true;
}

void RtEngine::route_emit(TaskRt& src, dsps::Tuple&& t,
                          std::chrono::steady_clock::time_point root_emit) {
  std::vector<std::size_t> picks;
  for (auto& route : src.routes) {
    if (route.stream != t.stream) continue;
    route.grouping->select(t, picks);
    const ComponentRt& dst = components_[route.dest_component];
    for (std::size_t di : picks) {
      std::size_t dest = dst.first_task + di;
      QueuedTuple qt;
      qt.tuple = t;
      qt.tuple.id = next_tuple_id_.fetch_add(1, std::memory_order_relaxed);
      qt.root_emit = root_emit;
      if (qt.tuple.root_id != 0) {
        std::lock_guard<std::mutex> lock(acker_mutex_);
        acker_.add_anchor(qt.tuple.root_id, qt.tuple.id);
      }
      enqueue(dest, std::move(qt));
    }
  }
}

void RtEngine::enqueue(std::size_t dest, QueuedTuple&& qt) {
  // Soft capacity: pushes never block (a producer and its consumer can
  // share a worker thread, so a hard wait could self-deadlock). End-to-end
  // backpressure comes from the spout pending-tree limit; the high-water
  // mark is tracked for diagnostics.
  TaskQueue& q = *tasks_[dest].queue;
  std::lock_guard<std::mutex> lock(q.mutex);
  q.items.push_back(std::move(qt));
  q.high_water = std::max(q.high_water, q.items.size());
}

RtTotals RtEngine::totals() const {
  RtTotals t;
  t.roots_emitted = roots_emitted_.load();
  t.acked = acked_.load();
  t.failed = failed_.load();
  for (const auto& task : tasks_) t.executed += task.executed.load();
  return t;
}

double RtEngine::mean_complete_latency() const {
  std::uint64_t n = acked_.load();
  if (n == 0) return 0.0;
  return static_cast<double>(latency_ns_sum_.load()) / static_cast<double>(n) * 1e-9;
}

std::vector<std::uint64_t> RtEngine::executed_per_task() const {
  std::vector<std::uint64_t> out;
  out.reserve(tasks_.size());
  for (const auto& t : tasks_) out.push_back(t.executed.load());
  return out;
}

std::pair<std::size_t, std::size_t> RtEngine::tasks_of(const std::string& component) const {
  for (const auto& c : components_) {
    if (c.name == component) return {c.first_task, c.first_task + c.parallelism};
  }
  throw std::invalid_argument("RtEngine::tasks_of: unknown " + component);
}

}  // namespace repro::rt
