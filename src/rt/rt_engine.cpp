#include "rt/rt_engine.hpp"

#include <algorithm>
#include <cmath>
#include <thread>
#include <stdexcept>

#include "common/rng.hpp"

namespace repro::rt {

namespace {
constexpr auto kIdleSleep = std::chrono::microseconds(200);
constexpr auto kMetricsPoll = std::chrono::milliseconds(2);

dsps::Assignment make_assignment(const dsps::Topology& topo, const RtConfig& cfg) {
  if (cfg.workers == 0) throw std::invalid_argument("RtEngine: need workers");
  return dsps::interleaved_schedule(topo, cfg.workers, 1);
}

/// Per-thread RNG for drop decisions (each thread gets its own stream).
std::atomic<std::uint64_t> g_drop_stream{0};
common::Pcg32& drop_rng() {
  thread_local common::Pcg32 rng(0xd20bu, g_drop_stream.fetch_add(1, std::memory_order_relaxed));
  return rng;
}

/// Which worker the current thread runs (kNoWorker on non-worker threads).
/// A kBlockUpstream push to a task the pushing thread itself owns must not
/// wait — that thread is also the one that would drain the queue.
constexpr std::size_t kNoWorker = static_cast<std::size_t>(-1);
thread_local std::size_t tl_worker = kNoWorker;

std::chrono::steady_clock::duration to_duration(double seconds) {
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(seconds));
}
}  // namespace

/// Per-task collector: emits land in the task's per-stream coalescing
/// buffer on the calling worker thread (routed the moment a batch fills —
/// at batch_size 1, immediately).
class RtEngine::Collector : public runtime::TaskCollectorBase {
 public:
  Collector(RtEngine* engine, std::size_t task)
      : runtime::TaskCollectorBase(&engine->core_, task), engine_(engine) {}

  void emit(dsps::Values values, const std::string& stream) override {
    dsps::Tuple t;
    t.root_id = current_root_;
    t.root_emit_time = current_root_emit_;
    t.stream = stream;
    t.values = std::move(values);
    engine_->buffer_emit(task_, std::move(t));
  }

  sim::SimTime now() const override {
    return engine_->seconds_since_start(std::chrono::steady_clock::now());
  }

  void set_context(std::uint64_t root, double root_emit_seconds) {
    current_root_ = root;
    current_root_emit_ = root_emit_seconds;
  }
  void clear_context() { current_root_ = 0; }

 private:
  RtEngine* engine_;
  std::uint64_t current_root_ = 0;
  double current_root_emit_ = 0.0;  ///< seconds since start()
};

RtEngine::RtEngine(dsps::Topology topology, RtConfig config)
    : topo_(std::move(topology)),
      config_(config),
      assignment_(make_assignment(topo_, config_)),
      core_(topo_, assignment_, 0x9000),
      flow_(config_.flow, core_.task_count()),
      acker_(config.ack_timeout),
      history_(config.history_capacity) {
  if (config_.flow.policy == runtime::OverflowPolicy::kBlockUpstream) {
    if (config_.max_spout_pending == 0) {
      throw std::invalid_argument(
          "RtEngine: kBlockUpstream needs max_spout_pending > 0 — the "
          "pending-tree limit is the end-to-end cap on parked emits");
    }
    if (!(config_.bp_max_wait > 0.0)) {
      throw std::invalid_argument("RtEngine: kBlockUpstream needs bp_max_wait > 0");
    }
    if (config_.batch_size > config_.flow.queue_capacity) {
      throw std::invalid_argument(
          "RtEngine: batch_size must be <= queue_capacity under kBlockUpstream — "
          "batches park whole, so a larger batch could never be admitted");
    }
  }
  if (config_.batch_size == 0) {
    throw std::invalid_argument("RtEngine: batch_size must be >= 1");
  }
  spout_cap_.store(config_.max_spout_pending, std::memory_order_relaxed);
  tasks_.resize(core_.task_count());
  task_worker_.resize(core_.task_count());
  for (std::size_t gid = 0; gid < tasks_.size(); ++gid) {
    tasks_[gid].collector = std::make_unique<Collector>(this, gid);
    tasks_[gid].queue = std::make_unique<TaskQueue>();
    task_worker_[gid].store(core_.task(gid).worker, std::memory_order_relaxed);
  }
  workers_.resize(config_.workers);

  // All acker calls happen under acker_mutex_, so the callbacks (and the
  // per-window topology counters they touch) are serialized by it too.
  acker_.set_on_complete([this](std::uint64_t, double latency, std::size_t) {
    acked_.fetch_add(1, std::memory_order_relaxed);
    latency_ns_sum_.fetch_add(static_cast<std::uint64_t>(latency * 1e9),
                              std::memory_order_relaxed);
    ++w_topo_.acked;
    w_topo_.latency_sum += latency;
    w_topo_.latencies.push_back(latency);
  });
  acker_.set_on_fail([this](std::uint64_t, std::size_t) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    ++w_topo_.failed;
  });

  core_.open_components();
}

RtEngine::~RtEngine() { stop(); }

double RtEngine::seconds_since_start(std::chrono::steady_clock::time_point tp) const {
  return std::chrono::duration<double>(tp - start_time_).count();
}

double RtEngine::now_seconds() const {
  return seconds_since_start(std::chrono::steady_clock::now());
}

void RtEngine::start() {
  if (started_) throw std::logic_error("RtEngine::start called twice");
  started_ = true;
  running_.store(true);
  start_time_ = std::chrono::steady_clock::now();
  auto window = to_duration(config_.window_seconds);
  for (auto& t : tasks_) {
    t.next_spout_poll = start_time_;
    t.next_window = start_time_ + window;
  }
  threads_.reserve(config_.workers);
  for (std::size_t w = 0; w < config_.workers; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
  metrics_thread_ = std::thread([this] { metrics_loop(); });
}

void RtEngine::stop() {
  if (!running_.exchange(false)) {
    // Not running (never started or already stopped): still join leftovers.
  }
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  if (metrics_thread_.joinable()) metrics_thread_.join();
}

void RtEngine::run_for(std::chrono::milliseconds duration) {
  start();
  std::this_thread::sleep_for(duration);
  stop();
}

void RtEngine::worker_loop(std::size_t worker) {
  tl_worker = worker;
  auto window = to_duration(config_.window_seconds);
  // Versioned snapshot of this worker's executor list: crash reassignment
  // and restart reclaim bump assignment_version_, and the loop re-reads
  // its list under the assignment mutex at the next iteration.
  std::vector<std::size_t> my_tasks;
  std::uint64_t seen_version = assignment_version_.load(std::memory_order_acquire) + 1;
  while (running_.load(std::memory_order_relaxed)) {
    std::uint64_t version = assignment_version_.load(std::memory_order_acquire);
    if (version != seen_version) {
      std::lock_guard<std::mutex> lock(assignment_mutex_);
      my_tasks = core_.worker_tasks()[worker];
      seen_version = version;
    }
    if (!workers_[worker].alive.load(std::memory_order_relaxed)) {
      // Crashed: park until restart (the thread itself stays alive).
      std::this_thread::sleep_for(kIdleSleep);
      continue;
    }
    bool did_work = false;
    auto now = std::chrono::steady_clock::now();
    for (std::size_t task_id : my_tasks) {
      TaskRt& task = tasks_[task_id];
      // Execution lease: skip the task while another worker (the previous
      // owner, mid-migration) is still stepping it.
      bool lease_free = false;
      if (!task.lease.compare_exchange_strong(lease_free, true, std::memory_order_acquire)) {
        continue;
      }
      runtime::TaskInfo& info = core_.task(task_id);
      if (info.spout) {
        if (now >= task.next_spout_poll) {
          spout_step(task, task_id, now);
          did_work = true;
        }
      } else {
        did_work |= bolt_step(task, task_id, worker);
        if (now >= task.next_window) {
          task.next_window += window;
          auto* collector = static_cast<Collector*>(task.collector.get());
          collector->clear_context();
          info.bolt->on_window(seconds_since_start(now), *collector);
          flush_emits(task_id);
        }
      }
      task.lease.store(false, std::memory_order_release);
    }
    if (did_work) {
      wakeups_productive_.fetch_add(1, std::memory_order_relaxed);
    } else {
      wakeups_spurious_.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(kIdleSleep);
    }
  }
}

void RtEngine::metrics_loop() {
  auto window = to_duration(config_.window_seconds);
  auto next = start_time_ + window;
  while (running_.load(std::memory_order_relaxed)) {
    auto now = std::chrono::steady_clock::now();
    if (now < next) {
      std::this_thread::sleep_for(std::min<std::chrono::steady_clock::duration>(
          next - now, kMetricsPoll));
      continue;
    }
    sample_window(now);
    next += window;
  }
}

void RtEngine::sample_window(std::chrono::steady_clock::time_point now) {
  dsps::WindowSample sample;
  sample.time = seconds_since_start(now);
  sample.window = config_.window_seconds;

  // Placement snapshot: worker task lists mutate under crash/restart, so
  // read them once under the assignment mutex (per-task owners come from
  // the atomic mirror).
  std::vector<std::vector<std::size_t>> worker_tasks;
  {
    std::lock_guard<std::mutex> lock(assignment_mutex_);
    worker_tasks = core_.worker_tasks();
  }

  // Drain per-task window counters; fold per-worker sums from the same
  // deltas before they are consumed by the task finalizer.
  std::vector<runtime::WorkerCounters> worker_acc(config_.workers);
  std::uint64_t win_overflow = 0;
  sample.tasks.reserve(tasks_.size());
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    TaskRt& t = tasks_[i];
    runtime::TaskCounters c;
    c.executed = t.w_executed.exchange(0, std::memory_order_relaxed);
    c.emitted = t.w_emitted.exchange(0, std::memory_order_relaxed);
    c.received = t.w_received.exchange(0, std::memory_order_relaxed);
    c.dropped = t.w_dropped.exchange(0, std::memory_order_relaxed);
    c.exec_time = static_cast<double>(t.w_exec_ns.exchange(0, std::memory_order_relaxed)) * 1e-9;
    c.queue_wait = static_cast<double>(t.w_wait_ns.exchange(0, std::memory_order_relaxed)) * 1e-9;
    if (flow_.bounded()) {
      c.dropped_overflow = flow_.take_overflow_drops(i);
      c.bp_stall = flow_.take_stall(i);
      win_overflow += c.dropped_overflow;
    }

    const runtime::TaskInfo& info = core_.task(i);
    std::size_t owner = task_worker_[i].load(std::memory_order_relaxed);
    runtime::WorkerCounters& wc = worker_acc[owner];
    wc.executed += c.executed;
    wc.emitted += c.emitted;
    wc.received += c.received;
    wc.exec_time_sum += c.exec_time;
    wc.queue_wait_sum += c.queue_wait;
    wc.service_seconds += c.exec_time;  // busy time == summed execute time
    wc.bp_stall += c.bp_stall;

    std::size_t queue_len;
    {
      std::lock_guard<std::mutex> lock(t.queue->mutex);
      queue_len = t.queue->tuples;
    }
    sample.tasks.push_back(runtime::finalize_task_window(
        i, core_.components()[info.component].name, info.comp_index, owner, c, queue_len));
  }

  sample.workers.reserve(config_.workers);
  for (std::size_t w = 0; w < config_.workers; ++w) {
    std::size_t qlen = 0;
    for (std::size_t t : worker_tasks[w]) qlen += sample.tasks[t].queue_len;
    sample.workers.push_back(runtime::finalize_worker_window(
        w, /*machine=*/0, worker_tasks[w].size(), worker_acc[w], qlen, config_.window_seconds));
  }
  // No machine model under the threads runtime, but the forecast features
  // want a machine row for every worker's machine — synthesize machine 0
  // (where every rt worker reports) from the worker windows.
  {
    dsps::MachineWindowStats machine;
    double busy = 0.0;
    for (const auto& ws : sample.workers) busy += ws.cpu_share;
    double cores =
        static_cast<double>(std::max(1u, std::thread::hardware_concurrency()));
    machine.machine = 0;
    machine.cpu_util = std::min(1.0, busy / cores);
    machine.load = busy;
    sample.machines.push_back(machine);
  }

  // Scheduler observability: window deltas of the lifetime wakeup
  // counters (metrics thread only, so a plain prev-snapshot suffices).
  dsps::SchedulerWindowStats totals = scheduler_totals();
  sample.scheduler.wakeups_productive = totals.wakeups_productive - sched_prev_.wakeups_productive;
  sample.scheduler.wakeups_spurious = totals.wakeups_spurious - sched_prev_.wakeups_spurious;
  sched_prev_ = totals;

  {
    std::lock_guard<std::mutex> lock(acker_mutex_);
    w_topo_.dropped_overflow += win_overflow;
    acker_.sweep(seconds_since_start(now));
    sample.topology =
        runtime::finalize_topology_window(w_topo_, config_.window_seconds, acker_.pending());
  }

  history_.push(std::move(sample));

  if (control_hook_ && control_interval_ > 0.0) {
    std::size_t every = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::llround(control_interval_ / config_.window_seconds)));
    if (history_.total() % every == 0) control_hook_(*this);
  }
}

void RtEngine::spout_step(TaskRt& task, std::size_t task_id,
                          std::chrono::steady_clock::time_point now) {
  dsps::Spout& spout = *core_.task(task_id).spout;
  double t_now = seconds_since_start(now);
  double delay = spout.next_delay(t_now);

  std::size_t budget = 0;
  const std::size_t cap = spout_cap_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(acker_mutex_);
    std::size_t pending = acker_.pending_for(task_id);
    budget = pending >= cap ? 0 : cap - pending;
  }
  budget = std::min(budget, config_.batch_size);
  if (budget == 0) {
    task.next_spout_poll = now + to_duration(std::max(delay, 1e-6));
    return;
  }

  // Pull up to a batch of tuples in one step; each extra pull consumes its
  // own inter-arrival delay so the configured spout rate is preserved.
  thread_local runtime::TupleBatch batch;
  batch.clear();
  batch.stream = dsps::kDefaultStream;
  while (batch.size() < budget) {
    if (!batch.empty()) delay += spout.next_delay(t_now);
    std::optional<dsps::Values> vals = spout.next(t_now);
    if (!vals.has_value()) break;
    std::uint64_t root = next_tuple_id_.fetch_add(1, std::memory_order_relaxed);
    batch.push_row(0, root, t_now, std::move(*vals));
  }
  task.next_spout_poll = now + to_duration(std::max(delay, 1e-6));
  if (batch.empty()) return;

  {
    std::lock_guard<std::mutex> lock(acker_mutex_);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      acker_.register_root(batch.root_ids[i], t_now, task_id);
    }
    w_topo_.roots_emitted += batch.size();
  }
  roots_emitted_.fetch_add(batch.size(), std::memory_order_relaxed);
  route_emit_batch(task_id, batch);
  {
    std::lock_guard<std::mutex> lock(acker_mutex_);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      acker_.discard_if_unanchored(batch.root_ids[i], t_now);
    }
    acker_.sweep(t_now);
  }
}

bool RtEngine::bolt_step(TaskRt& task, std::size_t task_id, std::size_t worker) {
  QueuedBatch qb;
  {
    std::lock_guard<std::mutex> lock(task.queue->mutex);
    if (task.queue->items.empty()) return false;
    qb = std::move(task.queue->items.front());
    task.queue->items.pop_front();
    task.queue->tuples -= qb.batch.size();
  }
  const std::size_t n = qb.batch.size();
  if (flow_.bounded()) {
    // The pop freed a whole batch of slots: release the credits and wake
    // blocked upstream emitters (all of them when more than one slot
    // opened — any parked batch that now fits may proceed).
    flow_.release_n(task_id, n);
    if (n == 1) {
      task.queue->cv.notify_one();
    } else {
      task.queue->cv.notify_all();
    }
  }
  auto begin = std::chrono::steady_clock::now();
  task.w_wait_ns.fetch_add(
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(begin - qb.enqueued).count()) *
          n,
      std::memory_order_relaxed);

  auto* collector = static_cast<Collector*>(task.collector.get());
  dsps::Bolt* bolt = core_.task(task_id).bolt.get();
  thread_local dsps::Tuple probe;
  probe.stream = qb.batch.stream;
  for (std::size_t i = 0; i < n; ++i) {
    collector->set_context(qb.batch.root_ids[i], qb.batch.root_emit_times[i]);
    qb.batch.borrow_row(i, probe);
    bolt->execute(probe, *collector);
  }
  collector->clear_context();
  // Route out everything the executes buffered BEFORE acking the inputs:
  // a child tuple must anchor before its parent's ack, or a root could
  // complete while its descendants are still in a coalescing buffer.
  flush_emits(task_id);

  auto done = std::chrono::steady_clock::now();
  double factor = workers_[worker].slowdown.load(std::memory_order_relaxed);
  if (factor > 1.0) {
    // Injected slowdown: stretch this batch's execution by busy-waiting,
    // so the padding shows up in avg_proc_time exactly like a degraded
    // host.
    auto deadline =
        done + to_duration(std::chrono::duration<double>(done - begin).count() * (factor - 1.0));
    while (std::chrono::steady_clock::now() < deadline &&
           running_.load(std::memory_order_relaxed)) {
    }
    done = std::chrono::steady_clock::now();
  }
  task.w_exec_ns.fetch_add(
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(done - begin).count()),
      std::memory_order_relaxed);
  task.executed.fetch_add(n, std::memory_order_relaxed);
  task.w_executed.fetch_add(n, std::memory_order_relaxed);

  bool any_anchored = false;
  for (std::size_t i = 0; i < n; ++i) {
    any_anchored = any_anchored || qb.batch.root_ids[i] != 0;
  }
  if (any_anchored) {
    std::lock_guard<std::mutex> lock(acker_mutex_);
    acker_.ack_batch(qb.batch.root_ids.data(), qb.batch.ids.data(), n,
                     seconds_since_start(std::chrono::steady_clock::now()));
  }
  return true;
}

void RtEngine::buffer_emit(std::size_t task, dsps::Tuple&& t) {
  runtime::TupleBatch* full = tasks_[task].emits.append(std::move(t), config_.batch_size);
  if (full != nullptr) {
    route_emit_batch(task, *full);
    full->clear();
  }
}

void RtEngine::flush_emits(std::size_t task) {
  tasks_[task].emits.flush([&](runtime::TupleBatch& b) { route_emit_batch(task, b); });
}

void RtEngine::route_emit_batch(std::size_t src_task, runtime::TupleBatch& batch) {
  tasks_[src_task].w_emitted.fetch_add(batch.size(), std::memory_order_relaxed);
  thread_local runtime::BatchRouteScratch scratch;
  core_.route_batch(
      src_task, batch, scratch,
      [&](std::size_t dest, const std::vector<std::uint32_t>& rows, bool may_move) {
        // Fresh per-destination batch (it crosses threads, so no pool).
        runtime::TupleBatch copy;
        copy.stream = batch.stream;
        if (may_move) {
          copy.steal_rows(batch, rows);  // each row consumed once: no payload copy
        } else {
          copy.append_rows(batch, rows);
        }
        const std::size_t m = copy.size();
        std::uint64_t base = next_tuple_id_.fetch_add(m, std::memory_order_relaxed);
        bool any_anchored = false;
        for (std::size_t k = 0; k < m; ++k) {
          copy.ids[k] = base + k;
          any_anchored = any_anchored || copy.root_ids[k] != 0;
        }
        if (any_anchored) {
          // One acker-lock acquisition anchors the whole batch.
          std::lock_guard<std::mutex> lock(acker_mutex_);
          acker_.add_anchors(copy.root_ids.data(), copy.ids.data(), m);
        }
        enqueue(src_task, dest, std::move(copy));
      });
}

void RtEngine::enqueue(std::size_t src_task, std::size_t dest, runtime::TupleBatch&& b) {
  TaskRt& task = tasks_[dest];
  task.w_received.fetch_add(b.size(), std::memory_order_relaxed);
  double p =
      workers_[task_worker_[dest].load(std::memory_order_relaxed)].drop_prob.load(
          std::memory_order_relaxed);
  if (p > 0.0) {
    // Injected loss filters per row; survivors compact in place. Dropped
    // rows are never acked: their roots fail at the timeout sweep.
    std::size_t kept = 0;
    for (std::size_t i = 0; i < b.size(); ++i) {
      if (drop_rng().bernoulli(p)) continue;
      b.move_row(i, kept);
      ++kept;
    }
    std::size_t dropped = b.size() - kept;
    if (dropped > 0) {
      task.w_dropped.fetch_add(dropped, std::memory_order_relaxed);
      b.truncate(kept);
    }
    if (b.empty()) return;
  }

  QueuedBatch qb;
  qb.batch = std::move(b);
  qb.enqueued = std::chrono::steady_clock::now();
  const std::size_t m = qb.batch.size();
  TaskQueue& q = *task.queue;
  // Destination-side re-coalescing (batch > 1 only; q.mutex must be held):
  // routing fans each batch into per-destination fragments, so without a
  // merge the effective batch size decays by the fan-out at every hop.
  // Fold the fragment into the queue tail when it fits; the tail keeps its
  // own enqueue timestamp (queue-wait measured from the first fragment).
  // Credit/capacity accounting is unchanged — callers still acquire per
  // incoming row and bump q.tuples by the same amount either way.
  auto push_or_merge = [&](QueuedBatch&& in) {
    if (config_.batch_size > 1 && !q.items.empty()) {
      runtime::TupleBatch& tail = q.items.back().batch;
      if (tail.stream == in.batch.stream &&
          tail.size() + in.batch.size() <= config_.batch_size) {
        tail.append_all(std::move(in.batch));
        return;
      }
    }
    q.items.push_back(std::move(in));
  };
  if (!flow_.bounded()) {
    // Historical soft capacity: pushes never block (a producer and its
    // consumer can share a worker thread, so a hard wait could
    // self-deadlock). End-to-end backpressure comes from the spout
    // pending-tree limit; the high-water mark is tracked for diagnostics.
    std::lock_guard<std::mutex> lock(q.mutex);
    push_or_merge(std::move(qb));
    q.tuples += m;
    q.high_water = std::max(q.high_water, q.tuples);
    return;
  }

  const std::size_t cap = flow_.config().queue_capacity;
  std::unique_lock<std::mutex> lock(q.mutex);
  if (flow_.config().policy == runtime::OverflowPolicy::kDropNewest) {
    // Admit as many leading rows as fit; shed the tail with exact
    // per-tuple accounting. Shed rows stay anchored, so their roots fail
    // at the ack-timeout sweep like any other loss.
    const std::size_t free = cap > q.tuples ? cap - q.tuples : 0;
    if (free == 0) {
      lock.unlock();
      flow_.count_overflow_drops(dest, m);
      return;
    }
    const std::size_t shed = m > free ? m - free : 0;
    if (shed > 0) qb.batch.truncate(free);
    flow_.acquire_n(dest, qb.batch.size());
    q.tuples += qb.batch.size();
    q.high_water = std::max(q.high_water, q.tuples);
    push_or_merge(std::move(qb));
    lock.unlock();
    if (shed > 0) flow_.count_overflow_drops(dest, shed);
    return;
  }
  // kBlockUpstream: wait for whole-batch credit — batches never split.
  auto wait_started = std::chrono::steady_clock::time_point{};
  auto deadline = std::chrono::steady_clock::time_point{};
  while (q.tuples + m > cap) {
    // Never wait on a queue this thread itself drains (the destination
    // is owned by the pushing worker), on a dead destination's queue,
    // or during shutdown: push over capacity instead — a soft overflow
    // that preserves liveness and is bounded by max_spout_pending.
    std::size_t owner = task_worker_[dest].load(std::memory_order_relaxed);
    if (owner == tl_worker || !workers_[owner].alive.load(std::memory_order_relaxed) ||
        !running_.load(std::memory_order_relaxed)) {
      break;
    }
    auto now = std::chrono::steady_clock::now();
    if (wait_started == std::chrono::steady_clock::time_point{}) {
      wait_started = now;
      deadline = now + to_duration(config_.bp_max_wait);
    } else if (now >= deadline) {
      // Escape valve for worker-thread wait cycles (A full toward B
      // while B is full toward A): capacity is exceeded transiently
      // rather than deadlocking.
      break;
    }
    q.cv.wait_until(lock, std::min(deadline, now + std::chrono::milliseconds(20)));
  }
  if (wait_started != std::chrono::steady_clock::time_point{}) {
    flow_.add_stall(src_task, std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                            wait_started)
                                  .count());
    qb.enqueued = std::chrono::steady_clock::now();  // waited: restart queue-wait clock
  }
  flow_.acquire_n(dest, m);
  push_or_merge(std::move(qb));
  q.tuples += m;
  q.high_water = std::max(q.high_water, q.tuples);
}

RtTotals RtEngine::totals() const {
  RtTotals t;
  t.roots_emitted = roots_emitted_.load();
  t.acked = acked_.load();
  t.failed = failed_.load();
  for (const auto& task : tasks_) t.executed += task.executed.load();
  t.lost = lost_.load();
  t.dropped_overflow = flow_.total_dropped_overflow();
  t.worker_crashes = crashes_.load();
  t.worker_restarts = restarts_.load();
  t.worker_retires = retires_.load();
  t.worker_adds = adds_.load();
  t.task_migrations = migrations_.load();
  t.wakeups_productive = wakeups_productive_.load();
  t.wakeups_spurious = wakeups_spurious_.load();
  return t;
}

dsps::SchedulerWindowStats RtEngine::scheduler_totals() const {
  dsps::SchedulerWindowStats s;
  s.wakeups_productive = wakeups_productive_.load(std::memory_order_relaxed);
  s.wakeups_spurious = wakeups_spurious_.load(std::memory_order_relaxed);
  return s;
}

double RtEngine::mean_complete_latency() const {
  std::uint64_t n = acked_.load();
  if (n == 0) return 0.0;
  return static_cast<double>(latency_ns_sum_.load()) / static_cast<double>(n) * 1e-9;
}

std::vector<std::uint64_t> RtEngine::executed_per_task() const {
  std::vector<std::uint64_t> out;
  out.reserve(tasks_.size());
  for (const auto& t : tasks_) out.push_back(t.executed.load());
  return out;
}

std::pair<std::size_t, std::size_t> RtEngine::tasks_of(const std::string& component) const {
  return core_.tasks_of(component);
}

std::size_t RtEngine::worker_of_task(std::size_t global_task) const {
  return task_worker_.at(global_task).load(std::memory_order_relaxed);
}

std::vector<std::size_t> RtEngine::workers_of(const std::string& component) const {
  return core_.workers_of(component);
}

std::size_t RtEngine::queue_length_of_task(std::size_t global_task) const {
  TaskQueue& q = *tasks_.at(global_task).queue;
  std::lock_guard<std::mutex> lock(q.mutex);
  return q.tuples;
}

std::shared_ptr<dsps::DynamicRatio> RtEngine::dynamic_ratio(const std::string& from,
                                                            const std::string& to) const {
  return runtime::find_dynamic_ratio(topo_, from, to);
}

std::vector<runtime::DynamicEdge> RtEngine::dynamic_edges() const {
  return runtime::list_dynamic_edges(topo_);
}

void RtEngine::set_control_hook(double interval, runtime::ControlSurface::ControlHook hook) {
  if (started_) throw std::logic_error("RtEngine::set_control_hook: set before start()");
  control_interval_ = interval;
  control_hook_ = std::move(hook);
}

void RtEngine::set_max_spout_pending(std::size_t cap) {
  if (config_.flow.policy == runtime::OverflowPolicy::kBlockUpstream && cap == 0) {
    throw std::invalid_argument(
        "RtEngine::set_max_spout_pending: kBlockUpstream needs a cap > 0 — "
        "the pending-tree limit is the end-to-end cap on parked emits");
  }
  spout_cap_.store(cap, std::memory_order_relaxed);
}

void RtEngine::set_worker_slowdown(std::size_t worker, double factor) {
  workers_.at(worker).slowdown.store(std::max(1.0, factor), std::memory_order_relaxed);
}

void RtEngine::set_worker_drop_prob(std::size_t worker, double probability) {
  workers_.at(worker).drop_prob.store(std::clamp(probability, 0.0, 1.0),
                                      std::memory_order_relaxed);
}

double RtEngine::worker_slowdown(std::size_t worker) const {
  return workers_.at(worker).slowdown.load(std::memory_order_relaxed);
}

double RtEngine::worker_drop_prob(std::size_t worker) const {
  return workers_.at(worker).drop_prob.load(std::memory_order_relaxed);
}

void RtEngine::crash_worker(std::size_t worker) {
  std::lock_guard<std::mutex> lock(assignment_mutex_);
  WorkerRt& w = workers_.at(worker);
  if (!w.alive.load(std::memory_order_relaxed)) return;
  w.alive.store(false, std::memory_order_relaxed);
  w.slowdown.store(1.0, std::memory_order_relaxed);
  w.drop_prob.store(0.0, std::memory_order_relaxed);
  crashes_.fetch_add(1, std::memory_order_relaxed);
  // The process dies with everything it queued (those roots fail at the
  // ack timeout). A tuple mid-execute on the worker thread completes —
  // documented tolerance vs the simulator's instant kill.
  for (std::size_t t : core_.worker_tasks()[worker]) {
    TaskQueue& q = *tasks_[t].queue;
    std::size_t wiped;
    {
      std::lock_guard<std::mutex> qlock(q.mutex);
      wiped = q.tuples;
      lost_.fetch_add(wiped, std::memory_order_relaxed);
      q.items.clear();
      q.tuples = 0;
    }
    if (flow_.bounded()) {
      // The dead queue's credits come back; wake every blocked emitter
      // (they re-check and see a dead owner or free capacity).
      flow_.release_n(t, wiped);
      q.cv.notify_all();
    }
  }
  // Reassignment candidates: alive AND active — a retired worker must not
  // pick up a dead one's executors.
  std::vector<bool> alive(workers_.size(), false);
  bool any_alive = false;
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    alive[i] = workers_[i].alive.load(std::memory_order_relaxed) &&
               workers_[i].active.load(std::memory_order_relaxed);
    any_alive = any_alive || alive[i];
  }
  if (any_alive) {
    // Same deterministic supervisor policy as the simulator, so the
    // recovered routing tables agree across backends.
    for (const dsps::TaskMove& m :
         dsps::plan_crash_reassignment(core_.worker_tasks(), worker, alive)) {
      core_.reassign_task(m.task, m.to_worker);
      task_worker_[m.task].store(m.to_worker, std::memory_order_relaxed);
    }
  }
  // else: total outage — executors stay parked with their dead worker.
  assignment_version_.fetch_add(1, std::memory_order_release);
}

void RtEngine::restart_worker(std::size_t worker) {
  std::lock_guard<std::mutex> lock(assignment_mutex_);
  WorkerRt& w = workers_.at(worker);
  if (w.alive.load(std::memory_order_relaxed)) return;
  w.alive.store(true, std::memory_order_relaxed);
  restarts_.fetch_add(1, std::memory_order_relaxed);
  if (!w.active.load(std::memory_order_relaxed)) {
    // Retired: rejoin the pool but host nothing until add_worker().
    assignment_version_.fetch_add(1, std::memory_order_release);
    return;
  }
  // Reclaim the originally assigned executors (graceful migration: queues
  // live with the task; the execution lease keeps old and new owner from
  // stepping a task concurrently during the handover).
  for (std::size_t t = 0; t < core_.task_count(); ++t) {
    if (assignment_.task_to_worker[t] == worker && core_.task(t).worker != worker) {
      core_.reassign_task(t, worker);
      task_worker_[t].store(worker, std::memory_order_relaxed);
    }
  }
  assignment_version_.fetch_add(1, std::memory_order_release);
}

bool RtEngine::worker_alive(std::size_t worker) const {
  return workers_.at(worker).alive.load(std::memory_order_relaxed);
}

bool RtEngine::worker_active(std::size_t worker) const {
  return workers_.at(worker).active.load(std::memory_order_relaxed);
}

std::vector<std::vector<std::size_t>> RtEngine::worker_task_snapshot() const {
  std::lock_guard<std::mutex> lock(assignment_mutex_);
  return core_.worker_tasks();
}

void RtEngine::reassign_task_locked(std::size_t task, std::size_t to_worker) {
  core_.reassign_task(task, to_worker);
  task_worker_[task].store(to_worker, std::memory_order_relaxed);
  migrations_.fetch_add(1, std::memory_order_relaxed);
}

void RtEngine::add_worker(std::size_t worker) {
  std::lock_guard<std::mutex> lock(assignment_mutex_);
  WorkerRt& w = workers_.at(worker);
  if (w.active.load(std::memory_order_relaxed)) return;
  w.active.store(true, std::memory_order_relaxed);
  adds_.fetch_add(1, std::memory_order_relaxed);
  assignment_version_.fetch_add(1, std::memory_order_release);
}

void RtEngine::retire_worker(std::size_t worker) {
  std::lock_guard<std::mutex> lock(assignment_mutex_);
  WorkerRt& w = workers_.at(worker);
  if (!w.active.load(std::memory_order_relaxed)) return;
  w.active.store(false, std::memory_order_relaxed);
  if (w.alive.load(std::memory_order_relaxed) && !core_.worker_tasks()[worker].empty()) {
    std::vector<bool> hosts(workers_.size(), false);
    bool any_host = false;
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      hosts[i] = workers_[i].alive.load(std::memory_order_relaxed) &&
                 workers_[i].active.load(std::memory_order_relaxed);
      any_host = any_host || hosts[i];
    }
    if (!any_host) {
      w.active.store(true, std::memory_order_relaxed);  // fail closed
      throw std::invalid_argument("retire_worker: no active worker left to host worker " +
                                  std::to_string(worker) + "'s executors");
    }
    // Graceful drain via the shared deterministic policy; queued tuples
    // travel with each task and the lease serializes the handover.
    for (const dsps::TaskMove& m :
         dsps::plan_crash_reassignment(core_.worker_tasks(), worker, hosts)) {
      reassign_task_locked(m.task, m.to_worker);
    }
  }
  retires_.fetch_add(1, std::memory_order_relaxed);
  assignment_version_.fetch_add(1, std::memory_order_release);
}

void RtEngine::migrate_tasks(const std::vector<dsps::TaskMove>& moves) {
  std::lock_guard<std::mutex> lock(assignment_mutex_);
  // Fail closed: validate the whole batch before touching placement.
  for (std::size_t i = 0; i < moves.size(); ++i) {
    const dsps::TaskMove& m = moves[i];
    const std::string field = "migrate_tasks: moves[" + std::to_string(i) + "]";
    if (m.task >= core_.task_count()) {
      throw std::invalid_argument(field + ".task: no task " + std::to_string(m.task));
    }
    if (m.to_worker >= workers_.size()) {
      throw std::invalid_argument(field + ".to_worker: no worker " +
                                  std::to_string(m.to_worker));
    }
    if (!workers_[m.to_worker].alive.load(std::memory_order_relaxed)) {
      throw std::invalid_argument(field + ".to_worker: worker " + std::to_string(m.to_worker) +
                                  " is dead");
    }
    if (!workers_[m.to_worker].active.load(std::memory_order_relaxed)) {
      throw std::invalid_argument(field + ".to_worker: worker " + std::to_string(m.to_worker) +
                                  " is retired");
    }
  }
  bool moved = false;
  for (const dsps::TaskMove& m : moves) {
    if (core_.task(m.task).worker == m.to_worker) continue;
    reassign_task_locked(m.task, m.to_worker);
    moved = true;
  }
  if (moved) assignment_version_.fetch_add(1, std::memory_order_release);
}

std::string RtEngine::placement_audit() const {
  std::lock_guard<std::mutex> lock(assignment_mutex_);
  std::string audit = core_.placement_audit();
  if (!audit.empty()) return audit;
  bool any_alive = false;
  bool any_active = false;
  for (const auto& w : workers_) {
    bool a = w.alive.load(std::memory_order_relaxed);
    any_alive = any_alive || a;
    any_active = any_active || (a && w.active.load(std::memory_order_relaxed));
  }
  for (std::size_t t = 0; t < core_.task_count(); ++t) {
    std::size_t owner = core_.task(t).worker;
    if (task_worker_[t].load(std::memory_order_relaxed) != owner) {
      return "task " + std::to_string(t) + "'s placement mirror is stale";
    }
    if (any_alive && !workers_[owner].alive.load(std::memory_order_relaxed)) {
      return "task " + std::to_string(t) + " is placed on dead worker " + std::to_string(owner);
    }
    if (any_active && workers_[owner].alive.load(std::memory_order_relaxed) &&
        !workers_[owner].active.load(std::memory_order_relaxed)) {
      return "task " + std::to_string(t) + " is placed on retired worker " +
             std::to_string(owner);
    }
  }
  return {};
}

}  // namespace repro::rt
