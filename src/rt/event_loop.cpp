#include "rt/event_loop.hpp"

#include <algorithm>

namespace repro::rt {
namespace {

// Which loop (if any) the current OS thread belongs to, for push locality:
// notifications raised from a loop thread go straight to its local queue,
// everything else goes through the global injector.
thread_local const EventLoop* tl_loop = nullptr;
thread_local std::size_t tl_slot = 0;

std::int64_t to_ns(EventLoop::Clock::time_point tp) {
  if (tp == EventLoop::Clock::time_point::max()) {
    return std::numeric_limits<std::int64_t>::max();
  }
  return std::chrono::duration_cast<std::chrono::nanoseconds>(tp.time_since_epoch()).count();
}

}  // namespace

// ---------------------------------------------------------------------------
// TimerWheel

TimerWheel::TimerWheel(Clock::duration slot_width, std::size_t slot_count)
    : slot_width_(slot_width), slots_(slot_count), last_advance_(Clock::now()) {}

std::size_t TimerWheel::slot_of(Clock::time_point when) const {
  auto ticks = static_cast<std::uint64_t>(when.time_since_epoch() / slot_width_);
  return static_cast<std::size_t>(ticks % slots_.size());
}

void TimerWheel::schedule(std::uint32_t task, Clock::time_point when) {
  slots_[slot_of(when)].push_back(Entry{task, when});
  ++count_;
}

TimerWheel::Clock::time_point TimerWheel::advance(Clock::time_point now,
                                                  std::vector<std::uint32_t>& due) {
  if (count_ == 0) {
    last_advance_ = now;
    return Clock::time_point::max();
  }
  // Visit every slot the cursor crossed since the last advance (inclusive),
  // capped at one full revolution: entries further out than one revolution
  // simply stay in their slot until a later visit (their stored deadline is
  // what decides expiry, the slot index only decides when we look).
  if (now > last_advance_) {
    auto elapsed = now - last_advance_;
    std::size_t steps =
        std::min<std::size_t>(slots_.size(),
                              static_cast<std::size_t>(elapsed / slot_width_) + 1);
    std::size_t begin = slot_of(last_advance_);
    for (std::size_t i = 0; i < steps; ++i) {
      std::vector<Entry>& slot = slots_[(begin + i) % slots_.size()];
      for (std::size_t j = 0; j < slot.size();) {
        if (slot[j].when <= now) {
          due.push_back(slot[j].task);
          slot[j] = slot.back();
          slot.pop_back();
          --count_;
        } else {
          ++j;
        }
      }
    }
    last_advance_ = now;
  }
  if (count_ == 0) return Clock::time_point::max();
  Clock::time_point next = Clock::time_point::max();
  for (const std::vector<Entry>& slot : slots_) {
    for (const Entry& e : slot) next = std::min(next, e.when);
  }
  return next;
}

// ---------------------------------------------------------------------------
// EventLoop

EventLoop::EventLoop(std::size_t threads, std::size_t task_count, RunFn run)
    : threads_(threads == 0 ? 1 : threads),
      task_count_(task_count),
      run_(std::move(run)),
      state_(new std::atomic<std::uint8_t>[task_count]),
      injector_next_(new std::atomic<std::uint32_t>[task_count]),
      wheel_(std::chrono::milliseconds(1), 256) {
  for (std::size_t i = 0; i < task_count; ++i) {
    state_[i].store(kIdle, std::memory_order_relaxed);
    injector_next_[i].store(kNil, std::memory_order_relaxed);
  }
  local_.reserve(threads_);
  for (std::size_t i = 0; i < threads_; ++i) local_.push_back(std::make_unique<LocalQueue>());
}

EventLoop::~EventLoop() { stop(); }

void EventLoop::start() {
  if (running_.exchange(true)) return;
  workers_.reserve(threads_);
  for (std::size_t i = 0; i < threads_; ++i) {
    workers_.emplace_back([this, i] { thread_main(i); });
  }
}

void EventLoop::stop() {
  if (!running_.exchange(false)) return;
  {
    std::lock_guard<std::mutex> lk(sleep_mutex_);
  }
  sleep_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
}

void EventLoop::notify(std::uint32_t task) {
  std::atomic<std::uint8_t>& st = state_[task];
  std::uint8_t cur = st.load(std::memory_order_acquire);
  while (true) {
    switch (cur) {
      case kIdle:
        if (st.compare_exchange_weak(cur, kQueued, std::memory_order_acq_rel)) {
          push_ready(task);
          return;
        }
        break;
      case kRunning:
        if (st.compare_exchange_weak(cur, kRunningNotified, std::memory_order_acq_rel)) {
          return;
        }
        break;
      default:
        // kQueued / kRunningNotified: already pending. kSuspended: plain
        // notifies are dropped — the task re-examines every wakeup
        // condition when resume() re-queues it, so nothing is lost.
        return;
    }
  }
}

void EventLoop::resume(std::uint32_t task) {
  std::atomic<std::uint8_t>& st = state_[task];
  std::uint8_t cur = st.load(std::memory_order_acquire);
  while (true) {
    switch (cur) {
      case kSuspended:
      case kIdle:
        if (st.compare_exchange_weak(cur, kQueued, std::memory_order_acq_rel)) {
          push_ready(task);
          return;
        }
        break;
      case kRunning:
        // The step that is about to suspend has not parked yet: convert the
        // resume into a re-run flag so it re-queues instead of parking.
        if (st.compare_exchange_weak(cur, kRunningNotified, std::memory_order_acq_rel)) {
          return;
        }
        break;
      default:
        return;  // kQueued / kRunningNotified: already runnable
    }
  }
}

void EventLoop::schedule_at(std::uint32_t task, Clock::time_point when) {
  std::lock_guard<std::mutex> lk(sleep_mutex_);
  wheel_.schedule(task, when);
  std::int64_t wn = to_ns(when);
  if (wn < next_timer_ns_.load(std::memory_order_relaxed)) {
    next_timer_ns_.store(wn, std::memory_order_release);
    // A sleeper may be waiting until a later deadline; poke one so it
    // recomputes its wait bound against the new earliest timer.
    if (sleepers_.load(std::memory_order_relaxed) > 0) sleep_cv_.notify_one();
  }
}

EventLoopStats EventLoop::stats() const {
  EventLoopStats s;
  s.wakeups_productive = wakeups_productive_.load(std::memory_order_relaxed);
  s.wakeups_spurious = wakeups_spurious_.load(std::memory_order_relaxed);
  s.steals = steals_.load(std::memory_order_relaxed);
  s.ready_peak = ready_peak_.load(std::memory_order_relaxed);
  return s;
}

void EventLoop::push_ready(std::uint32_t task) {
  // seq_cst pairs with the sleeper's seq_cst increment of sleepers_: either
  // the producer sees the sleeper (and notifies), or the sleeper's re-check
  // sees this increment — no lost wakeups (Dekker-style).
  std::size_t depth = ready_count_.fetch_add(1, std::memory_order_seq_cst) + 1;
  std::size_t peak = ready_peak_.load(std::memory_order_relaxed);
  while (depth > peak &&
         !ready_peak_.compare_exchange_weak(peak, depth, std::memory_order_relaxed)) {
  }

  if (tl_loop == this) {
    LocalQueue& q = *local_[tl_slot];
    std::lock_guard<std::mutex> lk(q.mutex);
    q.tasks.push_back(task);
  } else {
    // Lock-free MPSC-style injector push (Treiber stack over task ids; the
    // state machine guarantees a task id is pushed at most once at a time).
    std::uint32_t head = injector_head_.load(std::memory_order_relaxed);
    do {
      injector_next_[task].store(head, std::memory_order_relaxed);
    } while (!injector_head_.compare_exchange_weak(head, task, std::memory_order_acq_rel));
  }

  if (sleepers_.load(std::memory_order_seq_cst) > 0) {
    {
      std::lock_guard<std::mutex> lk(sleep_mutex_);
    }
    sleep_cv_.notify_one();
  }
}

bool EventLoop::drain_injector(std::size_t self) {
  std::uint32_t head = injector_head_.exchange(kNil, std::memory_order_acq_rel);
  if (head == kNil) return false;
  // The stack pops LIFO; reverse the chain so tasks run in push order.
  std::vector<std::uint32_t> chain;
  while (head != kNil) {
    chain.push_back(head);
    head = injector_next_[head].load(std::memory_order_relaxed);
  }
  LocalQueue& q = *local_[self];
  std::lock_guard<std::mutex> lk(q.mutex);
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) q.tasks.push_back(*it);
  return true;
}

bool EventLoop::steal(std::size_t self, std::uint32_t& task) {
  for (std::size_t i = 1; i < threads_; ++i) {
    LocalQueue& victim = *local_[(self + i) % threads_];
    std::lock_guard<std::mutex> lk(victim.mutex);
    if (!victim.tasks.empty()) {
      task = victim.tasks.front();
      victim.tasks.pop_front();
      steals_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

bool EventLoop::pop_ready(std::size_t self, std::uint32_t& task) {
  LocalQueue& mine = *local_[self];
  {
    std::lock_guard<std::mutex> lk(mine.mutex);
    if (!mine.tasks.empty()) {
      task = mine.tasks.front();
      mine.tasks.pop_front();
      ready_count_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  if (drain_injector(self)) {
    std::lock_guard<std::mutex> lk(mine.mutex);
    if (!mine.tasks.empty()) {
      task = mine.tasks.front();
      mine.tasks.pop_front();
      ready_count_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  if (steal(self, task)) {
    ready_count_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void EventLoop::run_task(std::uint32_t task, std::size_t self) {
  std::atomic<std::uint8_t>& st = state_[task];
  st.store(kRunning, std::memory_order_release);
  StepResult r = run_(task, self);
  std::uint8_t cur = st.load(std::memory_order_acquire);
  while (true) {
    bool requeue = false;
    std::uint8_t next;
    if (r == StepResult::kYield) {
      next = kQueued;
      requeue = true;
    } else if (cur == kRunningNotified) {
      // A notify/resume landed mid-step: run again rather than going idle
      // or parking (the racing wakeup must not be lost).
      next = kQueued;
      requeue = true;
    } else {
      next = (r == StepResult::kSuspend) ? kSuspended : kIdle;
    }
    if (st.compare_exchange_weak(cur, next, std::memory_order_acq_rel)) {
      if (requeue) push_ready(task);
      return;
    }
  }
}

void EventLoop::fire_timers(Clock::time_point now) {
  std::vector<std::uint32_t> due;
  {
    std::lock_guard<std::mutex> lk(sleep_mutex_);
    due_scratch_.clear();
    Clock::time_point next = wheel_.advance(now, due_scratch_);
    next_timer_ns_.store(to_ns(next), std::memory_order_release);
    due.swap(due_scratch_);
  }
  // Notify outside the sleep mutex: push_ready's wake branch takes it.
  for (std::uint32_t t : due) notify(t);
}

void EventLoop::thread_main(std::size_t self) {
  tl_loop = this;
  tl_slot = self;
  bool just_woke = false;
  while (running_.load(std::memory_order_acquire)) {
    // Fire due timers first so deadlines hold even when the loop never
    // goes idle (the check is one clock read + one atomic load).
    Clock::time_point now = Clock::now();
    if (to_ns(now) >= next_timer_ns_.load(std::memory_order_acquire)) {
      fire_timers(now);
    }

    std::uint32_t task;
    if (pop_ready(self, task)) {
      if (just_woke) {
        wakeups_productive_.fetch_add(1, std::memory_order_relaxed);
        just_woke = false;
      }
      run_task(task, self);
      continue;
    }
    if (just_woke) {
      wakeups_spurious_.fetch_add(1, std::memory_order_relaxed);
      just_woke = false;
    }

    std::int64_t next_ns = next_timer_ns_.load(std::memory_order_acquire);
    Clock::time_point bound = now + std::chrono::milliseconds(250);
    if (next_ns != std::numeric_limits<std::int64_t>::max()) {
      Clock::time_point next(std::chrono::duration_cast<Clock::duration>(
          std::chrono::nanoseconds(next_ns)));
      bound = std::min(bound, next);
    }
    std::unique_lock<std::mutex> lk(sleep_mutex_);
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    if (ready_count_.load(std::memory_order_seq_cst) > 0 ||
        injector_head_.load(std::memory_order_acquire) != kNil ||
        !running_.load(std::memory_order_acquire)) {
      sleepers_.fetch_sub(1, std::memory_order_relaxed);
      continue;
    }
    // Bounded sleep (belt and braces against a missed poke), never past
    // the earliest armed timer.
    sleep_cv_.wait_until(lk, bound);
    sleepers_.fetch_sub(1, std::memory_order_relaxed);
    just_woke = true;
  }
}

}  // namespace repro::rt
