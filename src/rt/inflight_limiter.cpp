#include "rt/inflight_limiter.hpp"

namespace repro::rt {

InflightLimiter::InflightLimiter(runtime::FlowControl& flow, std::size_t task_count)
    : flow_(flow), gate_(new std::atomic<std::size_t>[task_count]) {
  dests_.reserve(task_count);
  for (std::size_t i = 0; i < task_count; ++i) {
    dests_.push_back(std::make_unique<DestState>());
    gate_[i].store(0, std::memory_order_relaxed);
  }
}

void InflightLimiter::gate_up(std::size_t src) {
  if (gate_[src].fetch_add(1, std::memory_order_acq_rel) == 0) {
    suspends_.fetch_add(1, std::memory_order_relaxed);
  }
}

void InflightLimiter::gate_down(std::size_t src) {
  if (gate_[src].fetch_sub(1, std::memory_order_acq_rel) == 1) {
    resumes_.fetch_add(1, std::memory_order_relaxed);
    resume_(src);
  }
}

bool InflightLimiter::admit_or_park(std::size_t src, std::size_t dest,
                                    runtime::TupleBatch&& batch) {
  const std::size_t n = batch.size();
  DestState& d = *dests_[dest];
  std::lock_guard<std::mutex> lk(d.mutex);
  // FIFO: while anything is parked toward this destination, later batches
  // queue behind it even if the credits would fit them — delivery order is
  // park order, never credit-availability order.
  if (d.fifo.empty() && flow_.admit_n(dest, n) == n) {
    flow_.acquire_n(dest, n);
    deliver_(src, dest, std::move(batch));
    return true;
  }
  parked_tuples_.fetch_add(n, std::memory_order_relaxed);
  gate_up(src);
  d.fifo.push_back(Parked{src, std::move(batch), std::chrono::steady_clock::now()});
  return false;
}

void InflightLimiter::on_release(std::size_t dest) {
  DestState& d = *dests_[dest];
  std::lock_guard<std::mutex> lk(d.mutex);
  while (!d.fifo.empty()) {
    Parked& head = d.fifo.front();
    const std::size_t n = head.batch.size();
    if (flow_.admit_n(dest, n) != n) break;  // whole batches only, in order
    flow_.acquire_n(dest, n);
    const std::size_t src = head.src;
    const double stalled =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - head.parked_at)
            .count();
    runtime::TupleBatch batch = std::move(head.batch);
    d.fifo.pop_front();
    parked_tuples_.fetch_sub(n, std::memory_order_relaxed);
    flow_.add_stall(src, stalled);
    deliver_(src, dest, std::move(batch));
    gate_down(src);
  }
}

}  // namespace repro::rt
