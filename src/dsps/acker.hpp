#pragma once
// Storm's XOR-based tuple-tree acker: each root tracks a 64-bit ack value;
// anchoring XORs a tuple id in, acking XORs it out; zero means the whole
// tree is processed. Complete latency is measured here.
//
// The acker also owns the at-least-once replay hook: the engine can stash
// a root's values (`stash_replay`), and when the timeout sweep fails that
// root the values are handed back through the replay callback so the
// engine can re-emit them under a fresh root id. This is what makes the
// delivery guarantee hold under worker crashes — lost tuples surface as
// timeouts, and timeouts drive replay.
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "dsps/tuple.hpp"
#include "sim/clock.hpp"

namespace repro::dsps {

class Acker {
 public:
  using CompleteFn = std::function<void(std::uint64_t root, double latency, std::size_t spout_task)>;
  using FailFn = std::function<void(std::uint64_t root, std::size_t spout_task)>;
  /// Fired by sweep() for failed roots with stashed values. `attempt` is
  /// the attempt number of the FAILED emission (0 = the original).
  using ReplayFn =
      std::function<void(std::uint64_t root, std::size_t spout_task, Values&& values,
                         std::size_t attempt)>;

  explicit Acker(double timeout) : timeout_(timeout) {}

  void set_on_complete(CompleteFn fn) { on_complete_ = std::move(fn); }
  void set_on_fail(FailFn fn) { on_fail_ = std::move(fn); }
  void set_on_replay(ReplayFn fn) { on_replay_ = std::move(fn); }

  void register_root(std::uint64_t root, sim::SimTime emit_time, std::size_t spout_task);
  /// Keep a copy of the root's values for timeout-driven replay. Call
  /// right after register_root; `attempt` counts prior emissions of the
  /// same logical tuple (0 for the original).
  void stash_replay(std::uint64_t root, Values values, std::size_t attempt);
  /// XOR a delivered tuple id into the root's ack value.
  void add_anchor(std::uint64_t root, std::uint64_t tuple_id);
  /// XOR a processed tuple id out; fires completion when the value reaches 0.
  void ack_tuple(std::uint64_t root, std::uint64_t tuple_id, sim::SimTime now);

  // --- batched data path -------------------------------------------------
  // Column-at-a-time variants over parallel root/id arrays (a TupleBatch's
  // root_ids/ids columns). Semantically exactly n per-row calls in row
  // order — completions fire at the same row they would per-tuple — but
  // consecutive same-root runs reuse one map lookup, which is the common
  // layout after per-destination coalescing. Rows with root 0 (unanchored)
  // are skipped, mirroring the engines' per-tuple guard.
  void add_anchors(const std::uint64_t* roots, const std::uint64_t* ids, std::size_t n);
  void ack_batch(const std::uint64_t* roots, const std::uint64_t* ids, std::size_t n,
                 sim::SimTime now);

  /// Complete a root that never received an anchor (no subscribers):
  /// nothing downstream will ever ack it, so it is done by definition.
  void discard_if_unanchored(std::uint64_t root, sim::SimTime now);

  /// Fail all roots older than the timeout (in ascending root-id order, so
  /// replay re-emission is deterministic). Call periodically.
  void sweep(sim::SimTime now);

  std::size_t pending() const { return entries_.size(); }
  /// In-flight roots of one spout task. O(1): served from per-spout
  /// counters maintained at every register/complete/discard/sweep, NOT by
  /// scanning the root map — this sits on the spout-throttling hot path
  /// (max_spout_pending) and, under flow control, gates the credit-based
  /// backpressure release.
  std::size_t pending_for(std::size_t spout_task) const;
  /// Consistency audit of the cached per-spout counters against a full
  /// recount of the root map (O(pending); tests and debugging). Returns
  /// "" when they agree, else a diagnostic naming the first mismatch.
  std::string pending_audit() const;
  double timeout() const { return timeout_; }

 private:
  struct Entry {
    std::uint64_t ack_val = 0;
    sim::SimTime emit_time = 0.0;
    std::size_t spout_task = 0;
    bool anchored = false;  ///< at least one anchor seen
    bool has_replay = false;
    std::size_t attempt = 0;
    Values replay_values;
  };

  double timeout_;
  std::unordered_map<std::uint64_t, Entry> entries_;
  std::vector<std::size_t> per_spout_counts_;
  CompleteFn on_complete_;
  FailFn on_fail_;
  ReplayFn on_replay_;
};

}  // namespace repro::dsps
