#include "dsps/scheduler.hpp"

#include <stdexcept>

namespace repro::dsps {
namespace {

std::vector<std::size_t> machines_round_robin(std::size_t n_workers, std::size_t n_machines) {
  if (n_workers == 0 || n_machines == 0) {
    throw std::invalid_argument("schedule: need at least one worker and machine");
  }
  std::vector<std::size_t> w2m(n_workers);
  for (std::size_t w = 0; w < n_workers; ++w) w2m[w] = w % n_machines;
  return w2m;
}

}  // namespace

Assignment even_schedule(const Topology& topo, std::size_t n_workers, std::size_t n_machines) {
  Assignment a;
  a.worker_to_machine = machines_round_robin(n_workers, n_machines);
  a.task_to_worker.resize(topo.total_tasks());
  std::size_t next = 0;
  for (std::size_t t = 0; t < a.task_to_worker.size(); ++t) {
    a.task_to_worker[t] = next;
    next = (next + 1) % n_workers;
  }
  return a;
}

Assignment interleaved_schedule(const Topology& topo, std::size_t n_workers,
                                std::size_t n_machines) {
  Assignment a;
  a.worker_to_machine = machines_round_robin(n_workers, n_machines);
  a.task_to_worker.resize(topo.total_tasks());
  std::size_t base = 0;
  std::size_t offset = 0;
  auto place_component = [&](std::size_t parallelism) {
    for (std::size_t i = 0; i < parallelism; ++i) {
      a.task_to_worker[base + i] = (offset + i) % n_workers;
    }
    base += parallelism;
    ++offset;  // stagger the next component's starting worker
  };
  for (const auto& s : topo.spouts) place_component(s.parallelism);
  for (const auto& b : topo.bolts) place_component(b.parallelism);
  return a;
}

std::vector<TaskMove> plan_crash_reassignment(
    const std::vector<std::vector<std::size_t>>& worker_tasks, std::size_t dead_worker,
    const std::vector<bool>& alive) {
  if (dead_worker >= worker_tasks.size() || alive.size() != worker_tasks.size()) {
    throw std::invalid_argument("plan_crash_reassignment: bad worker tables");
  }
  std::vector<std::size_t> load(worker_tasks.size(), 0);
  bool any_alive = false;
  for (std::size_t w = 0; w < worker_tasks.size(); ++w) {
    load[w] = worker_tasks[w].size();
    if (w != dead_worker && alive[w]) any_alive = true;
  }
  if (!any_alive) {
    throw std::invalid_argument("plan_crash_reassignment: no surviving worker");
  }

  std::vector<TaskMove> moves;
  moves.reserve(worker_tasks[dead_worker].size());
  for (std::size_t task : worker_tasks[dead_worker]) {
    std::size_t best = worker_tasks.size();
    for (std::size_t w = 0; w < worker_tasks.size(); ++w) {
      if (w == dead_worker || !alive[w]) continue;
      if (best == worker_tasks.size() || load[w] < load[best]) best = w;
    }
    moves.push_back({task, dead_worker, best});
    ++load[best];
  }
  return moves;
}

}  // namespace repro::dsps
