#include "dsps/tuple.hpp"

#include <functional>
#include <stdexcept>

namespace repro::dsps {

std::int64_t Tuple::as_int(std::size_t i) const {
  if (i >= values.size()) throw std::out_of_range("Tuple::as_int: index");
  if (const auto* p = std::get_if<std::int64_t>(&values[i])) return *p;
  if (const auto* p = std::get_if<double>(&values[i])) return static_cast<std::int64_t>(*p);
  throw std::runtime_error("Tuple::as_int: field is a string");
}

double Tuple::as_double(std::size_t i) const {
  if (i >= values.size()) throw std::out_of_range("Tuple::as_double: index");
  if (const auto* p = std::get_if<double>(&values[i])) return *p;
  if (const auto* p = std::get_if<std::int64_t>(&values[i])) return static_cast<double>(*p);
  throw std::runtime_error("Tuple::as_double: field is a string");
}

const std::string& Tuple::as_string(std::size_t i) const {
  if (i >= values.size()) throw std::out_of_range("Tuple::as_string: index");
  if (const auto* p = std::get_if<std::string>(&values[i])) return *p;
  throw std::runtime_error("Tuple::as_string: field is not a string");
}

std::string value_to_string(const Value& v) {
  if (const auto* p = std::get_if<std::string>(&v)) return *p;
  if (const auto* p = std::get_if<std::int64_t>(&v)) return std::to_string(*p);
  return std::to_string(std::get<double>(v));
}

std::uint64_t hash_value(const Value& v) {
  if (const auto* p = std::get_if<std::string>(&v)) return std::hash<std::string>{}(*p);
  if (const auto* p = std::get_if<std::int64_t>(&v)) {
    return std::hash<std::int64_t>{}(*p);
  }
  return std::hash<double>{}(std::get<double>(v));
}

std::uint64_t hash_values(const Values& values, const std::vector<std::size_t>& indexes) {
  // FNV-style combine over field hashes; stable across runs (no pointer
  // hashing) so fields-grouping placement is reproducible.
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t x) {
    h ^= x;
    h *= 1099511628211ULL;
  };
  if (indexes.empty()) {
    for (const auto& v : values) mix(hash_value(v));
  } else {
    for (std::size_t i : indexes) {
      if (i < values.size()) mix(hash_value(values[i]));
    }
  }
  return h;
}

}  // namespace repro::dsps
