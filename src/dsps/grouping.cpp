#include "dsps/grouping.hpp"

#include <algorithm>
#include <stdexcept>

namespace repro::dsps {

const char* grouping_kind_name(GroupingKind kind) {
  switch (kind) {
    case GroupingKind::kShuffle: return "shuffle";
    case GroupingKind::kFields: return "fields";
    case GroupingKind::kAll: return "all";
    case GroupingKind::kGlobal: return "global";
    case GroupingKind::kLocalOrShuffle: return "local_or_shuffle";
    case GroupingKind::kPartialKey: return "partial_key";
    case GroupingKind::kDynamic: return "dynamic";
  }
  return "?";
}

void DynamicRatio::set_ratios(std::vector<double> weights) {
  if (weights.size() != size_) {
    throw std::invalid_argument("DynamicRatio::set_ratios: got " +
                                std::to_string(weights.size()) + " weights for " +
                                std::to_string(size_) + " downstream tasks");
  }
  double sum = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("DynamicRatio::set_ratios: negative weight");
    sum += w;
  }
  if (sum <= 0.0) throw std::invalid_argument("DynamicRatio::set_ratios: all-zero weights");
  for (double& w : weights) w /= sum;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    weights_ = std::move(weights);
  }
  version_.fetch_add(1, std::memory_order_release);
}

void DynamicRatio::snapshot_weights(std::vector<double>& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  out = weights_;
}

std::vector<double> DynamicRatio::weights() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return weights_;
}

ShuffleGrouping::ShuffleGrouping(std::size_t n_tasks, std::uint64_t seed) : n_(n_tasks) {
  if (n_tasks == 0) throw std::invalid_argument("ShuffleGrouping: no tasks");
  common::Pcg32 rng(seed, 0x5f);
  next_ = rng.bounded(static_cast<std::uint32_t>(n_tasks));
}

void ShuffleGrouping::select(const Tuple&, std::vector<std::size_t>& out) {
  out.clear();
  out.push_back(next_);
  next_ = (next_ + 1) % n_;
}

void FieldsGrouping::select(const Tuple& t, std::vector<std::size_t>& out) {
  out.clear();
  out.push_back(hash_values(t.values, fields_) % n_);
}

void AllGrouping::select(const Tuple&, std::vector<std::size_t>& out) {
  out.clear();
  for (std::size_t i = 0; i < n_; ++i) out.push_back(i);
}

void GlobalGrouping::select(const Tuple&, std::vector<std::size_t>& out) {
  out.clear();
  out.push_back(0);
}

LocalOrShuffleGrouping::LocalOrShuffleGrouping(std::size_t n_tasks,
                                               std::vector<std::size_t> local_tasks,
                                               std::uint64_t seed)
    : fallback_(n_tasks, seed), local_(std::move(local_tasks)) {}

void LocalOrShuffleGrouping::select(const Tuple& t, std::vector<std::size_t>& out) {
  if (local_.empty()) {
    fallback_.select(t, out);
    return;
  }
  out.clear();
  out.push_back(local_[next_local_]);
  next_local_ = (next_local_ + 1) % local_.size();
}

PartialKeyGrouping::PartialKeyGrouping(std::size_t n_tasks,
                                       std::vector<std::size_t> field_indexes)
    : n_(n_tasks), fields_(std::move(field_indexes)), sent_(n_tasks, 0) {
  if (n_tasks == 0) throw std::invalid_argument("PartialKeyGrouping: no tasks");
}

void PartialKeyGrouping::select(const Tuple& t, std::vector<std::size_t>& out) {
  out.clear();
  std::uint64_t h = hash_values(t.values, fields_);
  // Two independent candidates from one hash (split + remix).
  std::size_t a = h % n_;
  std::uint64_t h2 = h;
  h2 ^= h2 >> 33;
  h2 *= 0xff51afd7ed558ccdULL;
  h2 ^= h2 >> 33;
  std::size_t b = h2 % n_;
  std::size_t pick = sent_[a] <= sent_[b] ? a : b;
  ++sent_[pick];
  out.push_back(pick);
}

DynamicGrouping::DynamicGrouping(std::shared_ptr<DynamicRatio> ratio) : ratio_(std::move(ratio)) {
  if (!ratio_) throw std::invalid_argument("DynamicGrouping: null ratio");
  reload();
}

void DynamicGrouping::reload() {
  // Read the version BEFORE the snapshot: if a writer races in between,
  // the stale `seen_version_` makes the next select() re-snapshot.
  seen_version_ = ratio_->version();
  ratio_->snapshot_weights(weights_);
  current_.assign(weights_.size(), 0.0);
  total_weight_ = 0.0;
  for (double w : weights_) total_weight_ += w;
}

void DynamicGrouping::select(const Tuple&, std::vector<std::size_t>& out) {
  if (seen_version_ != ratio_->version()) reload();
  out.clear();
  // Smooth weighted round-robin (nginx-style): add each weight to its
  // running credit, pick the max, subtract the total from the winner.
  std::size_t best = 0;
  double best_credit = -1.0;
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    current_[i] += weights_[i];
    if (weights_[i] > 0.0 && current_[i] > best_credit) {
      best_credit = current_[i];
      best = i;
    }
  }
  current_[best] -= total_weight_;
  out.push_back(best);
}

GroupingSpec GroupingSpec::shuffle() { return {GroupingKind::kShuffle, {}, nullptr}; }

GroupingSpec GroupingSpec::fields(std::vector<std::size_t> indexes) {
  return {GroupingKind::kFields, std::move(indexes), nullptr};
}

GroupingSpec GroupingSpec::all() { return {GroupingKind::kAll, {}, nullptr}; }

GroupingSpec GroupingSpec::global() { return {GroupingKind::kGlobal, {}, nullptr}; }

GroupingSpec GroupingSpec::local_or_shuffle() {
  return {GroupingKind::kLocalOrShuffle, {}, nullptr};
}

GroupingSpec GroupingSpec::partial_key(std::vector<std::size_t> indexes) {
  return {GroupingKind::kPartialKey, std::move(indexes), nullptr};
}

GroupingSpec GroupingSpec::dynamic(std::shared_ptr<DynamicRatio> ratio) {
  return {GroupingKind::kDynamic, {}, std::move(ratio)};
}

std::unique_ptr<GroupingState> make_grouping_state(const GroupingSpec& spec, std::size_t n_tasks,
                                                   std::vector<std::size_t> local_tasks,
                                                   std::uint64_t seed) {
  switch (spec.kind) {
    case GroupingKind::kShuffle:
      return std::make_unique<ShuffleGrouping>(n_tasks, seed);
    case GroupingKind::kFields:
      return std::make_unique<FieldsGrouping>(n_tasks, spec.field_indexes);
    case GroupingKind::kAll:
      return std::make_unique<AllGrouping>(n_tasks);
    case GroupingKind::kGlobal:
      return std::make_unique<GlobalGrouping>();
    case GroupingKind::kLocalOrShuffle:
      return std::make_unique<LocalOrShuffleGrouping>(n_tasks, std::move(local_tasks), seed);
    case GroupingKind::kPartialKey:
      return std::make_unique<PartialKeyGrouping>(n_tasks, spec.field_indexes);
    case GroupingKind::kDynamic:
      if (!spec.ratio) throw std::invalid_argument("dynamic grouping requires a DynamicRatio");
      if (spec.ratio->size() != n_tasks) {
        throw std::invalid_argument("dynamic grouping ratio size != downstream task count");
      }
      return std::make_unique<DynamicGrouping>(spec.ratio);
  }
  throw std::logic_error("make_grouping_state: unknown kind");
}

}  // namespace repro::dsps
