#pragma once
// Topology declaration: named spouts and bolts with parallelism and stream
// subscriptions, assembled through a builder (Storm's TopologyBuilder).
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dsps/component.hpp"
#include "dsps/grouping.hpp"

namespace repro::dsps {

using SpoutFactory = std::function<std::unique_ptr<Spout>()>;
using BoltFactory = std::function<std::unique_ptr<Bolt>()>;

struct StreamSubscription {
  std::string from_component;
  std::string stream = kDefaultStream;
  GroupingSpec grouping;
};

struct SpoutSpec {
  std::string name;
  SpoutFactory factory;
  std::size_t parallelism = 1;
};

struct BoltSpec {
  std::string name;
  BoltFactory factory;
  std::size_t parallelism = 1;
  std::vector<StreamSubscription> subscriptions;
};

struct Topology {
  std::string name;
  std::vector<SpoutSpec> spouts;
  std::vector<BoltSpec> bolts;

  bool has_component(const std::string& name) const;
  std::size_t parallelism_of(const std::string& name) const;
  std::size_t total_tasks() const;
};

/// Fluent bolt declarer returned by TopologyBuilder::add_bolt.
class BoltDeclarer {
 public:
  BoltDeclarer(Topology& topo, std::size_t bolt_index) : topo_(&topo), index_(bolt_index) {}

  BoltDeclarer& shuffle_grouping(const std::string& from, const std::string& stream = kDefaultStream);
  BoltDeclarer& fields_grouping(const std::string& from, std::vector<std::size_t> field_indexes,
                                const std::string& stream = kDefaultStream);
  BoltDeclarer& all_grouping(const std::string& from, const std::string& stream = kDefaultStream);
  BoltDeclarer& global_grouping(const std::string& from, const std::string& stream = kDefaultStream);
  BoltDeclarer& local_or_shuffle_grouping(const std::string& from,
                                          const std::string& stream = kDefaultStream);
  BoltDeclarer& partial_key_grouping(const std::string& from,
                                     std::vector<std::size_t> field_indexes,
                                     const std::string& stream = kDefaultStream);
  /// Subscribe via dynamic grouping; returns the controllable ratio handle.
  std::shared_ptr<DynamicRatio> dynamic_grouping(const std::string& from,
                                                 const std::string& stream = kDefaultStream);
  /// Subscribe with an externally created spec (advanced use).
  BoltDeclarer& grouping(const std::string& from, GroupingSpec spec,
                         const std::string& stream = kDefaultStream);

 private:
  Topology* topo_;
  std::size_t index_;
};

class TopologyBuilder {
 public:
  explicit TopologyBuilder(std::string name);

  TopologyBuilder& set_spout(const std::string& name, SpoutFactory factory,
                             std::size_t parallelism = 1);
  BoltDeclarer set_bolt(const std::string& name, BoltFactory factory, std::size_t parallelism = 1);

  /// Validates wiring (components exist, ratio sizes match) and returns
  /// the finished topology. Throws std::invalid_argument on errors.
  Topology build();

 private:
  Topology topo_;
  bool built_ = false;
};

}  // namespace repro::dsps
