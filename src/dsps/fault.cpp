#include "dsps/fault.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace repro::dsps {

namespace {

void check_time(sim::SimTime at, const char* method) {
  if (!(at >= 0.0) || !std::isfinite(at)) {
    throw std::invalid_argument(std::string("FaultPlan::") + method +
                                ": event time must be finite and >= 0, got " + std::to_string(at));
  }
}

void check_finite(double v, const char* method, const char* what) {
  if (!std::isfinite(v)) {
    throw std::invalid_argument(std::string("FaultPlan::") + method + ": " + what +
                                " must be finite, got " + std::to_string(v));
  }
}

}  // namespace

FaultPlan& FaultPlan::slowdown(sim::SimTime at, std::size_t worker, double factor) {
  check_time(at, "slowdown");
  check_finite(factor, "slowdown", "factor");
  if (factor < 1.0) {
    throw std::invalid_argument("FaultPlan::slowdown: factor must be >= 1 (1 clears), got " +
                                std::to_string(factor));
  }
  events.push_back({at, FaultKind::kWorkerSlowdown, worker, factor, 0.0});
  return *this;
}

FaultPlan& FaultPlan::clear_slowdown(sim::SimTime at, std::size_t worker) {
  return slowdown(at, worker, 1.0);
}

FaultPlan& FaultPlan::hog(sim::SimTime at, std::size_t machine, double load) {
  check_time(at, "hog");
  check_finite(load, "hog", "load");
  if (load < 0.0) {
    throw std::invalid_argument("FaultPlan::hog: load must be >= 0 (0 clears), got " +
                                std::to_string(load));
  }
  events.push_back({at, FaultKind::kMachineHog, machine, load, 0.0});
  return *this;
}

FaultPlan& FaultPlan::clear_hog(sim::SimTime at, std::size_t machine) { return hog(at, machine, 0.0); }

FaultPlan& FaultPlan::stall(sim::SimTime at, std::size_t worker, double duration) {
  check_time(at, "stall");
  check_finite(duration, "stall", "duration");
  if (duration < 0.0) {
    throw std::invalid_argument("FaultPlan::stall: duration must be >= 0, got " +
                                std::to_string(duration));
  }
  events.push_back({at, FaultKind::kWorkerStall, worker, duration, 0.0});
  return *this;
}

FaultPlan& FaultPlan::drop(sim::SimTime at, std::size_t worker, double probability) {
  check_time(at, "drop");
  check_finite(probability, "drop", "probability");
  if (probability < 0.0 || probability > 1.0) {
    throw std::invalid_argument("FaultPlan::drop: probability must be in [0, 1], got " +
                                std::to_string(probability));
  }
  events.push_back({at, FaultKind::kWorkerDrop, worker, probability, 0.0});
  return *this;
}

FaultPlan& FaultPlan::ramp(sim::SimTime at, std::size_t worker, double final_slowdown,
                           double over_seconds) {
  check_time(at, "ramp");
  check_finite(final_slowdown, "ramp", "final slowdown");
  check_finite(over_seconds, "ramp", "ramp duration");
  if (final_slowdown < 1.0) {
    throw std::invalid_argument("FaultPlan::ramp: final slowdown must be >= 1, got " +
                                std::to_string(final_slowdown));
  }
  if (over_seconds < 0.0) {
    throw std::invalid_argument("FaultPlan::ramp: ramp duration must be >= 0, got " +
                                std::to_string(over_seconds));
  }
  events.push_back({at, FaultKind::kWorkerRamp, worker, final_slowdown, over_seconds});
  return *this;
}

FaultPlan& FaultPlan::crash(sim::SimTime at, std::size_t worker) {
  check_time(at, "crash");
  events.push_back({at, FaultKind::kWorkerCrash, worker, 0.0, 0.0});
  return *this;
}

FaultPlan& FaultPlan::restart(sim::SimTime at, std::size_t worker) {
  check_time(at, "restart");
  events.push_back({at, FaultKind::kWorkerRestart, worker, 0.0, 0.0});
  return *this;
}

FaultPlan& FaultPlan::link_delay(sim::SimTime at, std::size_t machine_a, std::size_t machine_b,
                                 double extra_seconds) {
  check_time(at, "link_delay");
  check_finite(extra_seconds, "link_delay", "extra delay");
  if (extra_seconds < 0.0) {
    throw std::invalid_argument("FaultPlan::link_delay: extra delay must be >= 0 (0 clears), got " +
                                std::to_string(extra_seconds));
  }
  events.push_back({at, FaultKind::kLinkDelay, machine_a, extra_seconds,
                    static_cast<double>(machine_b)});
  return *this;
}

FaultPlan& FaultPlan::clear_link_delay(sim::SimTime at, std::size_t machine_a,
                                       std::size_t machine_b) {
  return link_delay(at, machine_a, machine_b, 0.0);
}

bool FaultPlan::contains(FaultKind kind) const {
  for (const auto& ev : events) {
    if (ev.kind == kind) return true;
  }
  return false;
}

}  // namespace repro::dsps
