#include "dsps/fault.hpp"

namespace repro::dsps {

FaultPlan& FaultPlan::slowdown(sim::SimTime at, std::size_t worker, double factor) {
  events.push_back({at, FaultKind::kWorkerSlowdown, worker, factor, 0.0});
  return *this;
}

FaultPlan& FaultPlan::clear_slowdown(sim::SimTime at, std::size_t worker) {
  return slowdown(at, worker, 1.0);
}

FaultPlan& FaultPlan::hog(sim::SimTime at, std::size_t machine, double load) {
  events.push_back({at, FaultKind::kMachineHog, machine, load, 0.0});
  return *this;
}

FaultPlan& FaultPlan::clear_hog(sim::SimTime at, std::size_t machine) { return hog(at, machine, 0.0); }

FaultPlan& FaultPlan::stall(sim::SimTime at, std::size_t worker, double duration) {
  events.push_back({at, FaultKind::kWorkerStall, worker, duration, 0.0});
  return *this;
}

FaultPlan& FaultPlan::drop(sim::SimTime at, std::size_t worker, double probability) {
  events.push_back({at, FaultKind::kWorkerDrop, worker, probability, 0.0});
  return *this;
}

FaultPlan& FaultPlan::ramp(sim::SimTime at, std::size_t worker, double final_slowdown,
                           double over_seconds) {
  events.push_back({at, FaultKind::kWorkerRamp, worker, final_slowdown, over_seconds});
  return *this;
}

}  // namespace repro::dsps
