#pragma once
// Declarative fault plans for misbehaving-worker experiments: slowdowns,
// co-located CPU hogs, transient stalls, tuple drops, gradual ramps.
#include <cstdint>
#include <vector>

#include "sim/clock.hpp"

namespace repro::dsps {

enum class FaultKind {
  kWorkerSlowdown,   ///< target = worker id, value = slowdown factor (1 clears)
  kMachineHog,       ///< target = machine id, value = hog load in core-units (0 clears)
  kWorkerStall,      ///< target = worker id, value = stall duration (seconds)
  kWorkerDrop,       ///< target = worker id, value = drop probability (0 clears)
  kWorkerRamp,       ///< target = worker id, value = final slowdown, value2 = ramp seconds
};

struct FaultEvent {
  sim::SimTime at = 0.0;
  FaultKind kind = FaultKind::kWorkerSlowdown;
  std::size_t target = 0;
  double value = 1.0;
  double value2 = 0.0;
};

struct FaultPlan {
  std::vector<FaultEvent> events;

  FaultPlan& slowdown(sim::SimTime at, std::size_t worker, double factor);
  FaultPlan& clear_slowdown(sim::SimTime at, std::size_t worker);
  FaultPlan& hog(sim::SimTime at, std::size_t machine, double load);
  FaultPlan& clear_hog(sim::SimTime at, std::size_t machine);
  FaultPlan& stall(sim::SimTime at, std::size_t worker, double duration);
  FaultPlan& drop(sim::SimTime at, std::size_t worker, double probability);
  FaultPlan& ramp(sim::SimTime at, std::size_t worker, double final_slowdown, double over_seconds);
};

}  // namespace repro::dsps
