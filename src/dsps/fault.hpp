#pragma once
// Declarative fault plans for misbehaving-worker experiments: slowdowns,
// co-located CPU hogs, transient stalls, tuple drops, gradual ramps, and
// hard faults — worker crash/restart and network link-delay spikes.
#include <cstdint>
#include <vector>

#include "sim/clock.hpp"

namespace repro::dsps {

enum class FaultKind {
  kWorkerSlowdown,   ///< target = worker id, value = slowdown factor (1 clears)
  kMachineHog,       ///< target = machine id, value = hog load in core-units (0 clears)
  kWorkerStall,      ///< target = worker id, value = stall duration (seconds)
  kWorkerDrop,       ///< target = worker id, value = drop probability (0 clears)
  kWorkerRamp,       ///< target = worker id, value = final slowdown, value2 = ramp seconds
  kWorkerCrash,      ///< target = worker id: hard kill — queued tuples are lost,
                     ///< executors reassigned to surviving workers
  kWorkerRestart,    ///< target = worker id: rejoin and reclaim the originally
                     ///< assigned executors (graceful migration, queues kept)
  kLinkDelay,        ///< target = machine a, value2 = machine b, value = extra
                     ///< per-tuple transfer delay in seconds (0 clears)
};

struct FaultEvent {
  sim::SimTime at = 0.0;
  FaultKind kind = FaultKind::kWorkerSlowdown;
  std::size_t target = 0;
  double value = 1.0;
  double value2 = 0.0;
};

/// Builder for a fault schedule. Every method validates its inputs and
/// throws std::invalid_argument on out-of-domain values (negative times,
/// probabilities outside [0, 1], slowdown factors below 1, ...), so a
/// malformed experiment config fails at plan-construction time instead of
/// silently producing a subtly wrong run.
struct FaultPlan {
  std::vector<FaultEvent> events;

  FaultPlan& slowdown(sim::SimTime at, std::size_t worker, double factor);
  FaultPlan& clear_slowdown(sim::SimTime at, std::size_t worker);
  FaultPlan& hog(sim::SimTime at, std::size_t machine, double load);
  FaultPlan& clear_hog(sim::SimTime at, std::size_t machine);
  FaultPlan& stall(sim::SimTime at, std::size_t worker, double duration);
  FaultPlan& drop(sim::SimTime at, std::size_t worker, double probability);
  FaultPlan& ramp(sim::SimTime at, std::size_t worker, double final_slowdown, double over_seconds);
  FaultPlan& crash(sim::SimTime at, std::size_t worker);
  FaultPlan& restart(sim::SimTime at, std::size_t worker);
  FaultPlan& link_delay(sim::SimTime at, std::size_t machine_a, std::size_t machine_b,
                        double extra_seconds);
  FaultPlan& clear_link_delay(sim::SimTime at, std::size_t machine_a, std::size_t machine_b);

  /// True when the plan contains at least one event of `kind`.
  bool contains(FaultKind kind) const;
};

}  // namespace repro::dsps
