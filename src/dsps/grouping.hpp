#pragma once
// Stream groupings: how an emitting task picks destination task(s) among a
// downstream component's tasks. Includes Storm's standard groupings plus
// the paper's contribution #2, *dynamic grouping*, which distributes
// tuples according to an arbitrary split ratio that can change on the fly.
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "dsps/tuple.hpp"

namespace repro::dsps {

enum class GroupingKind {
  kShuffle,         ///< uniform round-robin (randomized start)
  kFields,          ///< hash of selected fields
  kAll,             ///< replicate to every task
  kGlobal,          ///< always task 0
  kLocalOrShuffle,  ///< prefer same-worker tasks, else shuffle
  kPartialKey,      ///< two-choices key grouping (load-balanced keys)
  kDynamic,         ///< split-ratio controlled (the paper's contribution)
};

const char* grouping_kind_name(GroupingKind kind);

/// Shared, mutable split-ratio for one dynamic-grouping connection.
/// The controller writes new ratios; every emitting task's grouping state
/// observes the bumped version on its next tuple — re-direction takes
/// effect immediately, which is what lets the framework bypass
/// misbehaving workers mid-stream.
///
/// Safe for concurrent read/actuate: under the real-threads runtime the
/// controller writes from the metrics thread while emitting worker threads
/// read. Readers poll `version()` (a lone atomic load — the simulator's
/// per-tuple fast path stays lock- and allocation-free) and only take the
/// mutex to re-snapshot weights after a version bump.
class DynamicRatio {
 public:
  explicit DynamicRatio(std::size_t n_tasks)
      : size_(n_tasks), weights_(n_tasks, 1.0 / static_cast<double>(n_tasks)) {}

  /// Set the split ratio (normalized internally). A zero weight removes
  /// that task from the distribution entirely. Throws
  /// std::invalid_argument on a wrong-length, negative, or all-zero
  /// weight vector.
  void set_ratios(std::vector<double> weights);

  /// Copy the current weights into `out` (reuses its capacity, so steady
  /// state is allocation-free).
  void snapshot_weights(std::vector<double>& out) const;
  /// Current weights, by value (locking copy; convenience for tests).
  std::vector<double> weights() const;
  std::uint64_t version() const { return version_.load(std::memory_order_acquire); }
  std::size_t size() const { return size_; }

 private:
  std::size_t size_;
  mutable std::mutex mutex_;
  std::vector<double> weights_;
  std::atomic<std::uint64_t> version_{1};
};

/// Per-emitting-task grouping state (single-threaded inside the simulator).
class GroupingState {
 public:
  virtual ~GroupingState() = default;
  /// Destination task indexes within the downstream component for `t`.
  virtual void select(const Tuple& t, std::vector<std::size_t>& out) = 0;
};

class ShuffleGrouping final : public GroupingState {
 public:
  ShuffleGrouping(std::size_t n_tasks, std::uint64_t seed);
  void select(const Tuple& t, std::vector<std::size_t>& out) override;

 private:
  std::size_t n_;
  std::size_t next_;
};

class FieldsGrouping final : public GroupingState {
 public:
  FieldsGrouping(std::size_t n_tasks, std::vector<std::size_t> field_indexes)
      : n_(n_tasks), fields_(std::move(field_indexes)) {}
  void select(const Tuple& t, std::vector<std::size_t>& out) override;

 private:
  std::size_t n_;
  std::vector<std::size_t> fields_;
};

class AllGrouping final : public GroupingState {
 public:
  explicit AllGrouping(std::size_t n_tasks) : n_(n_tasks) {}
  void select(const Tuple& t, std::vector<std::size_t>& out) override;

 private:
  std::size_t n_;
};

class GlobalGrouping final : public GroupingState {
 public:
  void select(const Tuple& t, std::vector<std::size_t>& out) override;
};

class LocalOrShuffleGrouping final : public GroupingState {
 public:
  LocalOrShuffleGrouping(std::size_t n_tasks, std::vector<std::size_t> local_tasks,
                         std::uint64_t seed);
  void select(const Tuple& t, std::vector<std::size_t>& out) override;

 private:
  ShuffleGrouping fallback_;
  std::vector<std::size_t> local_;
  std::size_t next_local_ = 0;
};

/// "Power of two choices" key grouping (Storm's partialKeyGrouping): each
/// key hashes to two candidate tasks; the emitter sends to whichever it has
/// loaded less so far. Splits hot keys across two tasks while keeping each
/// key's fan-out bounded — downstream must merge partials (as both example
/// applications already do).
class PartialKeyGrouping final : public GroupingState {
 public:
  PartialKeyGrouping(std::size_t n_tasks, std::vector<std::size_t> field_indexes);
  void select(const Tuple& t, std::vector<std::size_t>& out) override;

  const std::vector<std::uint64_t>& sent_counts() const { return sent_; }

 private:
  std::size_t n_;
  std::vector<std::size_t> fields_;
  std::vector<std::uint64_t> sent_;
};

/// Smooth weighted round-robin over the shared DynamicRatio: deterministic,
/// O(#tasks) per tuple, matches the requested ratio exactly over any window
/// whose length is a multiple of the ratio's resolution, and picks up ratio
/// updates on the very next tuple.
class DynamicGrouping final : public GroupingState {
 public:
  explicit DynamicGrouping(std::shared_ptr<DynamicRatio> ratio);
  void select(const Tuple& t, std::vector<std::size_t>& out) override;

  const DynamicRatio& ratio() const { return *ratio_; }

 private:
  void reload();

  std::shared_ptr<DynamicRatio> ratio_;
  std::uint64_t seen_version_ = 0;
  std::vector<double> weights_;
  std::vector<double> current_;
  double total_weight_ = 0.0;
};

/// Declarative grouping description used by the topology builder.
struct GroupingSpec {
  GroupingKind kind = GroupingKind::kShuffle;
  std::vector<std::size_t> field_indexes;      ///< fields grouping only
  std::shared_ptr<DynamicRatio> ratio;         ///< dynamic grouping only

  static GroupingSpec shuffle();
  static GroupingSpec fields(std::vector<std::size_t> indexes);
  static GroupingSpec all();
  static GroupingSpec global();
  static GroupingSpec local_or_shuffle();
  static GroupingSpec partial_key(std::vector<std::size_t> indexes);
  static GroupingSpec dynamic(std::shared_ptr<DynamicRatio> ratio);
};

/// Instantiate per-emitter state for a spec (`local_tasks` lists downstream
/// task indexes co-located with the emitter, for local-or-shuffle).
std::unique_ptr<GroupingState> make_grouping_state(const GroupingSpec& spec, std::size_t n_tasks,
                                                   std::vector<std::size_t> local_tasks,
                                                   std::uint64_t seed);

}  // namespace repro::dsps
