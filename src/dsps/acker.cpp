#include "dsps/acker.hpp"

#include <algorithm>

namespace repro::dsps {

void Acker::register_root(std::uint64_t root, sim::SimTime emit_time, std::size_t spout_task) {
  Entry e;
  e.emit_time = emit_time;
  e.spout_task = spout_task;
  entries_.emplace(root, std::move(e));
  if (spout_task >= per_spout_counts_.size()) per_spout_counts_.resize(spout_task + 1, 0);
  ++per_spout_counts_[spout_task];
}

void Acker::stash_replay(std::uint64_t root, Values values, std::size_t attempt) {
  auto it = entries_.find(root);
  if (it == entries_.end()) return;  // already completed (e.g. unanchored discard)
  it->second.has_replay = true;
  it->second.attempt = attempt;
  it->second.replay_values = std::move(values);
}

void Acker::add_anchor(std::uint64_t root, std::uint64_t tuple_id) {
  auto it = entries_.find(root);
  if (it == entries_.end()) return;  // already completed/failed
  it->second.ack_val ^= tuple_id;
  it->second.anchored = true;
}

void Acker::ack_tuple(std::uint64_t root, std::uint64_t tuple_id, sim::SimTime now) {
  auto it = entries_.find(root);
  if (it == entries_.end()) return;
  it->second.ack_val ^= tuple_id;
  if (it->second.anchored && it->second.ack_val == 0) {
    Entry e = std::move(it->second);
    entries_.erase(it);
    if (e.spout_task < per_spout_counts_.size() && per_spout_counts_[e.spout_task] > 0) {
      --per_spout_counts_[e.spout_task];
    }
    if (on_complete_) on_complete_(root, now - e.emit_time, e.spout_task);
  }
}

void Acker::add_anchors(const std::uint64_t* roots, const std::uint64_t* ids, std::size_t n) {
  auto it = entries_.end();
  std::uint64_t cached_root = 0;
  bool cached = false;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t root = roots[i];
    if (root == 0) continue;
    if (!cached || root != cached_root) {
      it = entries_.find(root);
      cached_root = root;
      cached = true;
    }
    if (it == entries_.end()) continue;  // already completed/failed
    it->second.ack_val ^= ids[i];
    it->second.anchored = true;
  }
}

void Acker::ack_batch(const std::uint64_t* roots, const std::uint64_t* ids, std::size_t n,
                      sim::SimTime now) {
  auto it = entries_.end();
  std::uint64_t cached_root = 0;
  bool cached = false;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t root = roots[i];
    if (root == 0) continue;
    if (!cached || root != cached_root) {
      it = entries_.find(root);
      cached_root = root;
      cached = true;
    }
    if (it == entries_.end()) continue;
    it->second.ack_val ^= ids[i];
    if (it->second.anchored && it->second.ack_val == 0) {
      Entry e = std::move(it->second);
      entries_.erase(it);
      cached = false;  // the cached iterator died with the entry
      it = entries_.end();
      if (e.spout_task < per_spout_counts_.size() && per_spout_counts_[e.spout_task] > 0) {
        --per_spout_counts_[e.spout_task];
      }
      if (on_complete_) on_complete_(root, now - e.emit_time, e.spout_task);
    }
  }
}

void Acker::discard_if_unanchored(std::uint64_t root, sim::SimTime now) {
  auto it = entries_.find(root);
  if (it == entries_.end() || it->second.anchored) return;
  Entry e = std::move(it->second);
  entries_.erase(it);
  if (e.spout_task < per_spout_counts_.size() && per_spout_counts_[e.spout_task] > 0) {
    --per_spout_counts_[e.spout_task];
  }
  if (on_complete_) on_complete_(root, now - e.emit_time, e.spout_task);
}

void Acker::sweep(sim::SimTime now) {
  std::vector<std::pair<std::uint64_t, Entry>> expired;
  for (auto& [root, entry] : entries_) {
    if (now - entry.emit_time >= timeout_) expired.emplace_back(root, std::move(entry));
  }
  // Canonical order: the replay callback re-emits tuples (consuming RNG
  // draws and scheduling events), so the processing order must not depend
  // on hash-map iteration.
  std::sort(expired.begin(), expired.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (auto& [root, entry] : expired) {
    entries_.erase(root);
    if (entry.spout_task < per_spout_counts_.size() && per_spout_counts_[entry.spout_task] > 0) {
      --per_spout_counts_[entry.spout_task];
    }
    if (on_fail_) on_fail_(root, entry.spout_task);
    if (entry.has_replay && on_replay_) {
      on_replay_(root, entry.spout_task, std::move(entry.replay_values), entry.attempt);
    }
  }
}

std::size_t Acker::pending_for(std::size_t spout_task) const {
  return spout_task < per_spout_counts_.size() ? per_spout_counts_[spout_task] : 0;
}

std::string Acker::pending_audit() const {
  std::vector<std::size_t> recount(per_spout_counts_.size(), 0);
  for (const auto& [root, entry] : entries_) {
    if (entry.spout_task >= recount.size()) recount.resize(entry.spout_task + 1, 0);
    ++recount[entry.spout_task];
  }
  for (std::size_t s = 0; s < std::max(recount.size(), per_spout_counts_.size()); ++s) {
    std::size_t cached = s < per_spout_counts_.size() ? per_spout_counts_[s] : 0;
    std::size_t actual = s < recount.size() ? recount[s] : 0;
    if (cached != actual) {
      return "spout task " + std::to_string(s) + ": cached pending " + std::to_string(cached) +
             " != recounted " + std::to_string(actual);
    }
  }
  return {};
}

}  // namespace repro::dsps
