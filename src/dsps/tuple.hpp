#pragma once
// Data tuples flowing through a topology, mirroring Storm's model:
// a tuple is a list of typed values emitted on a named stream, optionally
// anchored to a spout (root) tuple for the acking tree.
#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "sim/clock.hpp"

namespace repro::dsps {

using Value = std::variant<std::int64_t, double, std::string>;
using Values = std::vector<Value>;

/// Canonical stream name used when a component emits without naming one.
inline const std::string kDefaultStream = "default";

struct Tuple {
  std::uint64_t id = 0;        ///< unique tuple id (engine-assigned)
  std::uint64_t root_id = 0;   ///< spout tuple this descends from (0 = unanchored)
  std::string stream = kDefaultStream;
  Values values;
  sim::SimTime root_emit_time = 0.0;  ///< when the root left the spout

  std::int64_t as_int(std::size_t i) const;
  double as_double(std::size_t i) const;
  const std::string& as_string(std::size_t i) const;
};

std::string value_to_string(const Value& v);
std::uint64_t hash_value(const Value& v);
std::uint64_t hash_values(const Values& values, const std::vector<std::size_t>& indexes);

}  // namespace repro::dsps
