#pragma once
// Multilevel runtime statistics (the DRNN's input): task-, worker-,
// machine-, and topology-level samples collected at every window boundary.
#include <cstdint>
#include <string>
#include <vector>

#include "sim/clock.hpp"

namespace repro::dsps {

struct TaskWindowStats {
  std::size_t task = 0;  ///< global task id
  std::string component;
  std::size_t comp_index = 0;
  std::size_t worker = 0;
  std::uint64_t executed = 0;
  std::uint64_t emitted = 0;
  std::uint64_t received = 0;
  std::uint64_t dropped = 0;
  /// Tuples shed at this task's full in-queue (kDropNewest overflow).
  std::uint64_t dropped_overflow = 0;
  double avg_exec_latency = 0.0;  ///< mean service duration (seconds)
  double avg_queue_wait = 0.0;    ///< mean time queued before service
  std::size_t queue_len = 0;      ///< instantaneous, at the sample boundary
  /// Seconds this task's emits spent stalled on downstream backpressure
  /// (kBlockUpstream) during the window.
  double bp_stall = 0.0;
};

struct WorkerWindowStats {
  std::size_t worker = 0;
  std::size_t machine = 0;
  std::size_t executors = 0;
  std::uint64_t executed = 0;
  std::uint64_t emitted = 0;
  std::uint64_t received = 0;
  /// Mean tuple processing time at this worker — the paper's prediction
  /// target.
  double avg_proc_time = 0.0;
  double avg_queue_wait = 0.0;
  std::size_t queue_len = 0;       ///< sum over hosted executors
  double cpu_share = 0.0;          ///< busy service-seconds / window
  double gc_pause = 0.0;           ///< seconds spent GC-paused this window
  double mem_mb = 0.0;             ///< synthetic resident-memory estimate
  /// Backpressure-stall seconds summed over the worker's hosted executors
  /// this window (time their emits waited for downstream credit).
  double bp_stall = 0.0;
};

struct MachineWindowStats {
  std::size_t machine = 0;
  double cpu_util = 0.0;  ///< in [0, 1]
  double load = 0.0;      ///< runnable load at the sample boundary (incl. hogs)
};

struct TopologyWindowStats {
  std::uint64_t roots_emitted = 0;
  std::uint64_t acked = 0;
  std::uint64_t failed = 0;
  /// Tuples shed by queue-overflow (kDropNewest) across all tasks this
  /// window.
  std::uint64_t dropped_overflow = 0;
  std::uint64_t pending = 0;           ///< in-flight roots at the boundary
  double throughput = 0.0;             ///< acked per second
  double avg_complete_latency = 0.0;   ///< seconds, root emit -> tree done
  double p99_complete_latency = 0.0;
};

/// Scheduler observability (threaded backends; the simulator leaves it
/// zeroed). Counter fields are deltas over the window; ready_depth is
/// sampled at the window boundary and ready_peak is the lifetime peak.
/// On the cv-based rt engine a "wakeup" is one worker-loop pass (productive
/// = it found work, spurious = it went back to the idle sleep); on the
/// async engine it is a loop thread waking from its eventcount wait.
struct SchedulerWindowStats {
  std::uint64_t wakeups_productive = 0;
  std::uint64_t wakeups_spurious = 0;
  std::uint64_t steals = 0;    ///< tasks taken from another thread's run queue
  std::uint64_t suspends = 0;  ///< tasks suspended on backpressure (kBlockUpstream)
  std::uint64_t resumes = 0;   ///< suspended tasks re-queued on credit release
  std::size_t ready_depth = 0;
  std::size_t ready_peak = 0;
};

struct WindowSample {
  sim::SimTime time = 0.0;   ///< end of window
  double window = 1.0;       ///< length (seconds)
  std::vector<TaskWindowStats> tasks;
  std::vector<WorkerWindowStats> workers;
  std::vector<MachineWindowStats> machines;
  TopologyWindowStats topology;
  SchedulerWindowStats scheduler;
};

}  // namespace repro::dsps
