#pragma once
// The stream engine: instantiates a topology on a simulated cluster and
// drives it on the discrete-event queue — spout pacing, tuple routing via
// groupings, queueing and service at executors (with machine interference
// and worker faults), acking, metrics windows, fault plans, and a control
// hook for the predictive controller.
//
// The topology/route tables and the per-window statistics accumulation
// live in the shared runtime core (src/runtime); this class is the
// discrete-event *driver* over that core and also implements
// runtime::ControlSurface so controllers attach to it interchangeably
// with the real-threads runtime.
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "dsps/acker.hpp"
#include "dsps/cluster.hpp"
#include "dsps/component.hpp"
#include "dsps/fault.hpp"
#include "dsps/metrics.hpp"
#include "dsps/scheduler.hpp"
#include "dsps/topology.hpp"
#include "dsps/worker.hpp"
#include "runtime/control_surface.hpp"
#include "runtime/flow_control.hpp"
#include "runtime/topology_state.hpp"
#include "runtime/tuple_batch.hpp"
#include "runtime/window_stats.hpp"
#include "sim/event_queue.hpp"
#include "sim/machine.hpp"
#include "sim/network.hpp"

namespace repro::dsps {

/// Totals accumulated over the whole run.
struct EngineTotals {
  std::uint64_t roots_emitted = 0;  ///< registered roots, including replays
  std::uint64_t acked = 0;
  std::uint64_t failed = 0;
  std::uint64_t tuples_delivered = 0;
  std::uint64_t tuples_executed = 0;
  std::uint64_t tuples_dropped = 0;   ///< dropped by an injected drop fault
  std::uint64_t tuples_lost = 0;      ///< queued/in-flight tuples lost to crashes
  std::uint64_t tuples_dropped_overflow = 0;  ///< shed at full bounded in-queues
  std::uint64_t replays = 0;          ///< roots re-emitted after a timeout
  std::uint64_t replays_exhausted = 0;///< roots failed with no replay budget left
  std::uint64_t worker_crashes = 0;
  std::uint64_t worker_restarts = 0;
  std::uint64_t worker_retires = 0;   ///< graceful scale-in drains
  std::uint64_t worker_adds = 0;      ///< scale-out re-activations
  std::uint64_t task_migrations = 0;  ///< executors moved by rescale plans
};

class Engine : public runtime::ControlSurface {
 public:
  Engine(Topology topology, ClusterConfig config);
  ~Engine() override;

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Advance the simulation. Callable repeatedly.
  void run_for(double seconds);
  void run_until(sim::SimTime t);
  sim::SimTime now() const { return queue_.now(); }

  // --- control surface -----------------------------------------------
  std::string backend_name() const override { return "sim"; }
  double now_seconds() const override { return now(); }
  /// The DynamicRatio of the (from -> to) dynamic-grouping connection.
  /// Throws std::invalid_argument when missing or not dynamic.
  std::shared_ptr<DynamicRatio> dynamic_ratio(const std::string& from,
                                              const std::string& to) const override;
  std::vector<runtime::DynamicEdge> dynamic_edges() const override;
  /// Invoke `fn` every `interval` seconds of simulated time.
  void set_control_callback(double interval, std::function<void(Engine&)> fn);
  void set_control_hook(double interval, runtime::ControlSurface::ControlHook hook) override;
  void apply_fault_plan(const FaultPlan& plan);
  // Immediate fault actuators (also usable from tests/examples).
  bool supports_fault_injection() const override { return true; }
  void set_worker_slowdown(std::size_t worker, double factor) override;
  void set_worker_drop_prob(std::size_t worker, double probability) override;
  double worker_slowdown(std::size_t worker) const override;
  double worker_drop_prob(std::size_t worker) const override;
  void stall_worker(std::size_t worker, double duration);
  void set_machine_hog(std::size_t machine, double load);
  /// Extra per-tuple transfer delay on a machine pair (0 clears).
  void set_link_extra_delay(std::size_t machine_a, std::size_t machine_b, double extra_seconds);
  // Crash/recovery: hard-kill a worker (queued tuples lost, executors
  // reassigned via the shared deterministic supervisor policy) and rejoin
  // it (reclaiming its original executors, queues preserved).
  bool supports_crash_recovery() const override { return true; }
  void crash_worker(std::size_t worker) override;
  void restart_worker(std::size_t worker) override;
  bool worker_alive(std::size_t worker) const override;
  // Elastic scaling: graceful retire (executors drain to the remaining
  // active workers, queues preserved), re-activation, and planned
  // executor migration — each migration stalls both endpoint workers by
  // cfg_.rescale_pause (the modeled state-handoff cost).
  // Spout rate control: the credit-based throttle cap (acker pending
  // gate) exposed as a live actuator for rate controllers.
  bool supports_spout_throttle() const override { return true; }
  std::size_t max_spout_pending() const override { return cfg_.max_spout_pending; }
  void set_max_spout_pending(std::size_t cap) override;
  bool supports_elastic_scaling() const override { return true; }
  void add_worker(std::size_t worker) override;
  void retire_worker(std::size_t worker) override;
  void migrate_tasks(const std::vector<TaskMove>& moves) override;
  bool worker_active(std::size_t worker) const override;
  std::vector<std::vector<std::size_t>> worker_task_snapshot() const override;

  // --- introspection ---------------------------------------------------
  /// The window-history spine (retention set by ClusterConfig::
  /// history_capacity; unbounded by default). The inherited history()
  /// vector view stays the full run history in unbounded mode.
  const runtime::WindowHistory& window_history() const override { return history_; }
  const EngineTotals& totals() const { return totals_; }
  /// In-flight (registered, not yet acked/failed) tuple-tree roots.
  std::size_t pending_roots() const { return acker_.pending(); }
  std::size_t worker_count() const override { return workers_.size(); }
  std::size_t machine_count() const { return machines_.size(); }
  const Worker& worker(std::size_t id) const { return workers_.at(id); }
  const sim::Machine& machine(std::size_t id) const { return machines_.at(id); }
  const Topology& topology() const { return topo_; }
  const ClusterConfig& config() const { return cfg_; }
  /// Global task-id range [first, first+parallelism) of a component.
  std::pair<std::size_t, std::size_t> tasks_of(const std::string& component) const override;
  std::size_t worker_of_task(std::size_t global_task) const override;
  /// Workers hosting at least one task of `component`.
  std::vector<std::size_t> workers_of(const std::string& component) const override;
  std::size_t queue_length_of_task(std::size_t global_task) const override;
  /// The bounded data path (present even under the kUnbounded default;
  /// its config() says which policy runs).
  const runtime::FlowControl* flow_control() const override { return &flow_; }
  /// Tuples currently parked at emit sites by kBlockUpstream backpressure
  /// (zero in any other mode; zero again once a bounded run drains).
  std::size_t parked_tuples() const;
  /// Placement-table consistency check (the chaos harness's routing
  /// invariant): the core audit, the engine-side worker mirrors, and
  /// no task left on a dead worker while survivors exist. Empty when
  /// consistent, else a diagnostic.
  std::string placement_audit() const;

 private:
  /// The queue/service unit: a routed TupleBatch and its arrival time at
  /// the destination's in-queue (batch size 1 under the default config).
  struct QueuedBatch {
    runtime::TupleBatch batch;
    sim::SimTime arrive = 0.0;
  };

  class Collector;

  /// A routed batch held at its emit site because the destination's
  /// bounded in-queue is full (kBlockUpstream). Batches park whole and
  /// drain whole — a blocked batch is never split.
  struct ParkedBatch {
    runtime::TupleBatch batch;
    std::size_t src_task = 0;
    sim::SimTime parked_at = 0.0;
  };

  /// Per-task discrete-event state; the static tables (spout/bolt
  /// instances, routes, placement) live in core_.
  struct TaskRuntime {
    std::unique_ptr<Collector> collector;
    std::deque<QueuedBatch> queue;
    std::size_t queued_tuples = 0;  ///< sum of queued batch sizes
    std::size_t in_service = 0;     ///< rows of the batch being serviced (0 if !busy)
    bool busy = false;
    /// Worker running the in-flight service (valid while busy). Usually
    /// the hosting worker, but a graceful migration can move the task
    /// while a batch is still completing on the previous host — crash
    /// accounting must charge that batch to the machine running it.
    std::size_t service_owner = 0;
    bool linger_pending = false;    ///< a deferred try_start event is scheduled
    runtime::TaskCounters window;
    /// Batches destined to *this* task, waiting for its in-queue credit.
    std::deque<ParkedBatch> parked;
    /// How many of this task's emitted batches are parked downstream;
    /// while nonzero the task neither starts service nor (as a spout)
    /// consumes from the workload — that is the hop-by-hop backpressure.
    std::size_t blocked_out = 0;
    /// Per-stream coalescing buffers for this task's bolt emits; flushed
    /// when a batch fills and at the end of every execute/on_window run,
    /// so the buffers are empty between events.
    runtime::EmitBuffer emits;
  };

  void schedule_spout_poll(std::size_t task, double delay);
  void spout_poll(std::size_t task);
  /// Append a bolt emit to its task's coalescing buffer; routes the
  /// stream's open batch the moment it reaches the configured size.
  void buffer_emit(std::size_t task, Tuple&& t);
  /// Route out whatever the task's emit buffers still hold.
  void flush_emits(std::size_t task);
  void route_emit_batch(std::size_t src_task, runtime::TupleBatch& batch);
  /// Put an admitted batch on the (simulated) wire toward `dest` — one
  /// network-delay draw per (destination, batch).
  void transfer(std::size_t src_task, std::size_t dest, runtime::TupleBatch&& b);
  /// Re-admit parked batches at `dest` while it has whole-batch credit,
  /// resuming their stalled emitters.
  void drain_parked(std::size_t dest);
  void deliver(std::size_t dest_task, runtime::TupleBatch&& b);
  void try_start(std::size_t task);
  /// try_start, but at batch_size > 1 a partial batch arriving at an idle
  /// task lingers (cfg_.batch_linger) so more fragments can merge first.
  void start_or_linger(std::size_t task);
  // `owner`/`incarnation` are the hosting worker at scheduling time: a
  // bumped incarnation means the worker crashed while the batch waited or
  // was in service, so the (already counted lost) batch is discarded.
  void begin_service(std::size_t task, QueuedBatch&& qb, std::size_t owner,
                     std::uint64_t incarnation);
  void complete_service(std::size_t task, QueuedBatch&& qb, sim::SimTime start, double duration,
                        std::size_t owner, std::uint64_t incarnation);
  /// Batch-buffer pool: routed batches recycle their column capacity.
  runtime::TupleBatch take_batch();
  void recycle_batch(runtime::TupleBatch&& b);
  void replay_root(std::size_t spout_task, Values&& values, std::size_t attempt);
  void refresh_worker_task_mirrors();
  /// Apply validated migrations: reassign in the core, stall both
  /// endpoints by the rescale pause, refresh mirrors, restart service on
  /// the moved tasks' preserved queues.
  void perform_migrations(const std::vector<TaskMove>& moves);
  void sample_window();
  void schedule_gc(std::size_t worker);
  void fire_control();
  void apply_fault_event(const FaultEvent& ev);

  Topology topo_;
  ClusterConfig cfg_;
  sim::EventQueue queue_;
  sim::Network network_;
  Acker acker_;
  common::Pcg32 rng_service_;
  common::Pcg32 rng_drop_;

  std::vector<sim::Machine> machines_;
  std::vector<Worker> workers_;
  Assignment assignment_;
  runtime::TopologyState core_;
  runtime::FlowControl flow_;
  std::vector<TaskRuntime> tasks_;
  runtime::BatchRouteScratch route_scratch_;  ///< scratch for core_.route_batch()
  Tuple cost_probe_;   ///< scratch row view for Bolt::tuple_cost
  Tuple exec_probe_;   ///< scratch row view for Bolt::execute
  std::vector<runtime::TupleBatch> batch_pool_;
  std::vector<std::uint64_t> spout_roots_;  ///< scratch: roots of one spout pull

  std::uint64_t next_tuple_id_ = 1;
  runtime::WindowHistory history_;
  EngineTotals totals_;

  // Per-window topology counters.
  runtime::TopologyCounters w_topo_;

  double control_interval_ = 0.0;
  std::function<void(Engine&)> control_fn_;
  bool started_ = false;
};

}  // namespace repro::dsps
