#pragma once
// The stream engine: instantiates a topology on a simulated cluster and
// drives it on the discrete-event queue — spout pacing, tuple routing via
// groupings, queueing and service at executors (with machine interference
// and worker faults), acking, metrics windows, fault plans, and a control
// hook for the predictive controller.
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "dsps/acker.hpp"
#include "dsps/cluster.hpp"
#include "dsps/component.hpp"
#include "dsps/fault.hpp"
#include "dsps/metrics.hpp"
#include "dsps/scheduler.hpp"
#include "dsps/topology.hpp"
#include "dsps/worker.hpp"
#include "sim/event_queue.hpp"
#include "sim/machine.hpp"
#include "sim/network.hpp"

namespace repro::dsps {

/// Totals accumulated over the whole run.
struct EngineTotals {
  std::uint64_t roots_emitted = 0;
  std::uint64_t acked = 0;
  std::uint64_t failed = 0;
  std::uint64_t tuples_delivered = 0;
  std::uint64_t tuples_dropped = 0;
};

class Engine {
 public:
  Engine(Topology topology, ClusterConfig config);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Advance the simulation. Callable repeatedly.
  void run_for(double seconds);
  void run_until(sim::SimTime t);
  sim::SimTime now() const { return queue_.now(); }

  // --- control surface -----------------------------------------------
  /// The DynamicRatio of the (from -> to) dynamic-grouping connection.
  std::shared_ptr<DynamicRatio> dynamic_ratio(const std::string& from, const std::string& to) const;
  /// Invoke `fn` every `interval` seconds of simulated time.
  void set_control_callback(double interval, std::function<void(Engine&)> fn);
  void apply_fault_plan(const FaultPlan& plan);
  // Immediate fault actuators (also usable from tests/examples).
  void set_worker_slowdown(std::size_t worker, double factor);
  void set_worker_drop_prob(std::size_t worker, double probability);
  void stall_worker(std::size_t worker, double duration);
  void set_machine_hog(std::size_t machine, double load);

  // --- introspection ---------------------------------------------------
  const std::vector<WindowSample>& history() const { return history_; }
  const EngineTotals& totals() const { return totals_; }
  std::size_t worker_count() const { return workers_.size(); }
  std::size_t machine_count() const { return machines_.size(); }
  const Worker& worker(std::size_t id) const { return workers_.at(id); }
  const sim::Machine& machine(std::size_t id) const { return machines_.at(id); }
  const Topology& topology() const { return topo_; }
  const ClusterConfig& config() const { return cfg_; }
  /// Global task-id range [first, first+parallelism) of a component.
  std::pair<std::size_t, std::size_t> tasks_of(const std::string& component) const;
  std::size_t worker_of_task(std::size_t global_task) const;
  /// Workers hosting at least one task of `component`.
  std::vector<std::size_t> workers_of(const std::string& component) const;
  std::size_t queue_length_of_task(std::size_t global_task) const;

 private:
  struct QueuedTuple {
    Tuple tuple;
    sim::SimTime arrive = 0.0;
  };

  struct OutRoute {
    std::string stream;
    std::size_t dest_component = 0;  ///< index into components_
    std::unique_ptr<GroupingState> grouping;
  };

  struct TaskRuntime;
  class Collector;

  struct ComponentRuntime {
    std::string name;
    bool is_spout = false;
    std::size_t first_task = 0;
    std::size_t parallelism = 0;
  };

  struct TaskRuntime {
    std::size_t global_id = 0;
    std::size_t component = 0;  ///< index into components_
    std::size_t comp_index = 0;
    std::size_t worker = 0;
    std::unique_ptr<Spout> spout;
    std::unique_ptr<Bolt> bolt;
    std::unique_ptr<Collector> collector;
    std::deque<QueuedTuple> queue;
    bool busy = false;
    std::vector<OutRoute> routes;
    // Window counters.
    std::uint64_t w_executed = 0;
    std::uint64_t w_emitted = 0;
    std::uint64_t w_received = 0;
    std::uint64_t w_dropped = 0;
    double w_exec_time = 0.0;
    double w_queue_wait = 0.0;
  };

  void build_runtime();
  void schedule_spout_poll(std::size_t task, double delay);
  void spout_poll(std::size_t task);
  void route_emit(TaskRuntime& src, Tuple&& t);
  void deliver(std::size_t dest_task, Tuple&& t);
  void try_start(std::size_t task);
  void begin_service(std::size_t task, QueuedTuple&& qt);
  void complete_service(std::size_t task, QueuedTuple&& qt, sim::SimTime start, double duration);
  void sample_window();
  void schedule_gc(std::size_t worker);
  void fire_control();
  void apply_fault_event(const FaultEvent& ev);

  Topology topo_;
  ClusterConfig cfg_;
  sim::EventQueue queue_;
  sim::Network network_;
  Acker acker_;
  common::Pcg32 rng_service_;
  common::Pcg32 rng_drop_;

  std::vector<sim::Machine> machines_;
  std::vector<Worker> workers_;
  Assignment assignment_;
  std::vector<ComponentRuntime> components_;
  std::vector<TaskRuntime> tasks_;
  std::unordered_map<std::string, std::size_t> component_index_;

  std::uint64_t next_tuple_id_ = 1;
  std::vector<WindowSample> history_;
  EngineTotals totals_;

  // Per-window topology counters.
  std::uint64_t w_roots_ = 0;
  std::uint64_t w_acked_ = 0;
  std::uint64_t w_failed_ = 0;
  double w_latency_sum_ = 0.0;
  std::vector<double> w_latencies_;

  double control_interval_ = 0.0;
  std::function<void(Engine&)> control_fn_;
  bool started_ = false;
};

}  // namespace repro::dsps
