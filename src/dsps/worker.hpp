#pragma once
// Worker process state: placement, fault-injected health, and per-window
// accounting. Workers are the unit the predictive controller reasons
// about — a "misbehaving worker" is a worker whose slowdown, stalls, or
// co-located hog load degrade the tuples routed through it.
#include <cstdint>
#include <vector>

#include "runtime/window_stats.hpp"
#include "sim/clock.hpp"

namespace repro::dsps {

struct Worker {
  std::size_t id = 0;
  std::size_t machine = 0;
  std::vector<std::size_t> executor_tasks;  ///< global task ids hosted here

  // Fault-injection state (hidden from the controller's feature view;
  // observable only through its effect on runtime statistics).
  double slowdown = 1.0;            ///< >= 1; multiplies service durations
  sim::SimTime stall_until = 0.0;   ///< new services delayed until then
  double drop_prob = 0.0;           ///< tuple drop probability on arrival

  // Crash/recovery state. `incarnation` bumps on every crash: service
  // completions capture it at service start, so work begun before a crash
  // is discarded instead of completing on a process that no longer exists.
  bool alive = true;
  std::uint64_t incarnation = 0;
  std::uint64_t crashes = 0;        ///< lifetime crash count (diagnostics)

  // Elastic-scaling state, orthogonal to `alive`: a retired worker keeps
  // its process but hosts no executors and is excluded from placement
  // (crash reassignment, restart reclaim) until re-activated.
  bool active = true;

  /// Per-window accounting (reset at each metrics sample).
  runtime::WorkerCounters window;

  bool healthy() const { return alive && slowdown <= 1.0 && drop_prob == 0.0; }

  void reset_window() { window.reset(); }
};

}  // namespace repro::dsps
