#include "dsps/engine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/logging.hpp"

namespace repro::dsps {

/// Per-task OutputCollector implementation: emits are routed immediately
/// (simulated network delay applies per delivered copy) and anchored to
/// the input tuple's root while a bolt is mid-execute.
class Engine::Collector : public OutputCollector {
 public:
  Collector(Engine* engine, std::size_t task) : engine_(engine), task_(task) {}

  void emit(Values values, const std::string& stream) override {
    Tuple t;
    t.root_id = current_root_;
    t.root_emit_time = current_root_time_;
    t.stream = stream;
    t.values = std::move(values);
    engine_->route_emit(engine_->tasks_[task_], std::move(t));
  }

  sim::SimTime now() const override { return engine_->now(); }
  std::size_t task_index() const override { return engine_->tasks_[task_].comp_index; }
  std::size_t peer_count() const override {
    return engine_->components_[engine_->tasks_[task_].component].parallelism;
  }

  void set_context(std::uint64_t root, sim::SimTime root_time) {
    current_root_ = root;
    current_root_time_ = root_time;
  }
  void clear_context() {
    current_root_ = 0;
    current_root_time_ = 0.0;
  }

 private:
  Engine* engine_;
  std::size_t task_;
  std::uint64_t current_root_ = 0;
  sim::SimTime current_root_time_ = 0.0;
};

Engine::Engine(Topology topology, ClusterConfig config)
    : topo_(std::move(topology)),
      cfg_(config),
      network_(config.network, config.seed),
      acker_(config.ack_timeout),
      rng_service_(config.seed, 0x51),
      rng_drop_(config.seed, 0xd1) {
  if (cfg_.machines == 0 || cfg_.workers_per_machine == 0) {
    throw std::invalid_argument("Engine: need machines and workers");
  }
  for (std::size_t m = 0; m < cfg_.machines; ++m) {
    machines_.emplace_back(m, "machine-" + std::to_string(m), cfg_.cores_per_machine);
  }
  std::size_t n_workers = cfg_.machines * cfg_.workers_per_machine;
  assignment_ = interleaved_schedule(topo_, n_workers, cfg_.machines);
  workers_.resize(n_workers);
  for (std::size_t w = 0; w < n_workers; ++w) {
    workers_[w].id = w;
    workers_[w].machine = assignment_.worker_to_machine[w];
  }
  build_runtime();

  acker_.set_on_complete([this](std::uint64_t root, double latency, std::size_t spout_task) {
    ++totals_.acked;
    ++w_acked_;
    w_latency_sum_ += latency;
    w_latencies_.push_back(latency);
    tasks_[spout_task].spout->on_ack(root);
  });
  acker_.set_on_fail([this](std::uint64_t root, std::size_t spout_task) {
    ++totals_.failed;
    ++w_failed_;
    tasks_[spout_task].spout->on_fail(root);
  });
}

Engine::~Engine() = default;

void Engine::build_runtime() {
  // Component table: spouts first, bolts after (global task ids follow).
  std::size_t first = 0;
  for (const auto& s : topo_.spouts) {
    component_index_[s.name] = components_.size();
    components_.push_back({s.name, true, first, s.parallelism});
    first += s.parallelism;
  }
  for (const auto& b : topo_.bolts) {
    component_index_[b.name] = components_.size();
    components_.push_back({b.name, false, first, b.parallelism});
    first += b.parallelism;
  }

  tasks_.resize(topo_.total_tasks());
  std::size_t gid = 0;
  auto init_task = [&](std::size_t comp, std::size_t idx) {
    TaskRuntime& t = tasks_[gid];
    t.global_id = gid;
    t.component = comp;
    t.comp_index = idx;
    t.worker = assignment_.task_to_worker[gid];
    t.collector = std::make_unique<Collector>(this, gid);
    workers_[t.worker].executor_tasks.push_back(gid);
    ++gid;
  };
  for (std::size_t s = 0; s < topo_.spouts.size(); ++s) {
    for (std::size_t i = 0; i < topo_.spouts[s].parallelism; ++i) {
      init_task(s, i);
      tasks_[gid - 1].spout = topo_.spouts[s].factory();
    }
  }
  for (std::size_t b = 0; b < topo_.bolts.size(); ++b) {
    std::size_t comp = topo_.spouts.size() + b;
    for (std::size_t i = 0; i < topo_.bolts[b].parallelism; ++i) {
      init_task(comp, i);
      tasks_[gid - 1].bolt = topo_.bolts[b].factory();
    }
  }

  // Resolve outgoing routes: for each bolt subscription, attach a grouping
  // state to every task of the upstream component.
  for (std::size_t b = 0; b < topo_.bolts.size(); ++b) {
    std::size_t dest_comp = topo_.spouts.size() + b;
    const BoltSpec& spec = topo_.bolts[b];
    for (const auto& sub : spec.subscriptions) {
      auto src_it = component_index_.find(sub.from_component);
      if (src_it == component_index_.end()) {
        throw std::invalid_argument("Engine: unknown upstream " + sub.from_component);
      }
      const ComponentRuntime& src = components_[src_it->second];
      const ComponentRuntime& dst = components_[dest_comp];
      for (std::size_t i = 0; i < src.parallelism; ++i) {
        TaskRuntime& src_task = tasks_[src.first_task + i];
        // Downstream tasks co-located with this emitter (local-or-shuffle).
        std::vector<std::size_t> local;
        for (std::size_t j = 0; j < dst.parallelism; ++j) {
          if (tasks_[dst.first_task + j].worker == src_task.worker) local.push_back(j);
        }
        OutRoute route;
        route.stream = sub.stream;
        route.dest_component = dest_comp;
        route.grouping = make_grouping_state(sub.grouping, dst.parallelism, std::move(local),
                                             cfg_.seed + 31 * src_task.global_id + 7 * b);
        src_task.routes.push_back(std::move(route));
      }
    }
  }

  // Open/prepare components.
  for (auto& t : tasks_) {
    const ComponentRuntime& c = components_[t.component];
    if (t.spout) t.spout->open(t.comp_index, c.parallelism);
    if (t.bolt) t.bolt->prepare(t.comp_index, c.parallelism);
  }
}

void Engine::run_for(double seconds) { run_until(now() + seconds); }

void Engine::run_until(sim::SimTime t) {
  if (!started_) {
    started_ = true;
    for (auto& task : tasks_) {
      if (task.spout) schedule_spout_poll(task.global_id, 0.0);
    }
    queue_.schedule_after(cfg_.window_seconds, [this] { sample_window(); });
    if (cfg_.gc_interval_mean > 0.0) {
      for (std::size_t w = 0; w < workers_.size(); ++w) schedule_gc(w);
    }
  }
  queue_.run_until(t);
}

void Engine::schedule_spout_poll(std::size_t task, double delay) {
  queue_.schedule_after(std::max(delay, 1e-9), [this, task] { spout_poll(task); });
}

void Engine::spout_poll(std::size_t task) {
  TaskRuntime& t = tasks_[task];
  double delay = t.spout->next_delay(now());
  if (acker_.pending_for(task) < cfg_.max_spout_pending) {
    std::optional<Values> vals = t.spout->next(now());
    if (vals.has_value()) {
      std::uint64_t root = next_tuple_id_++;
      acker_.register_root(root, now(), task);
      ++totals_.roots_emitted;
      ++w_roots_;
      Tuple tup;
      tup.root_id = root;
      tup.root_emit_time = now();
      tup.values = std::move(*vals);
      route_emit(t, std::move(tup));
      acker_.discard_if_unanchored(root, now());
    }
  } else {
    // Backpressure: pending tree limit reached; retry shortly without
    // consuming from the workload generator.
    delay = std::max(delay, 1e-3);
  }
  schedule_spout_poll(task, delay);
}

void Engine::route_emit(TaskRuntime& src, Tuple&& t) {
  ++src.w_emitted;
  ++workers_[src.worker].window_emitted;
  std::vector<std::size_t> picks;
  for (auto& route : src.routes) {
    if (route.stream != t.stream) continue;
    route.grouping->select(t, picks);
    const ComponentRuntime& dst = components_[route.dest_component];
    for (std::size_t di : picks) {
      std::size_t dest = dst.first_task + di;
      Tuple copy = t;
      copy.id = next_tuple_id_++;
      if (copy.root_id != 0) acker_.add_anchor(copy.root_id, copy.id);
      ++totals_.tuples_delivered;
      double delay = network_.transfer_delay(workers_[src.worker].machine,
                                             workers_[tasks_[dest].worker].machine);
      queue_.schedule_after(delay, [this, dest, moved = std::move(copy)]() mutable {
        deliver(dest, std::move(moved));
      });
    }
  }
}

void Engine::deliver(std::size_t dest_task, Tuple&& t) {
  TaskRuntime& task = tasks_[dest_task];
  Worker& w = workers_[task.worker];
  ++task.w_received;
  ++w.window_received;
  if (w.drop_prob > 0.0 && rng_drop_.bernoulli(w.drop_prob)) {
    ++task.w_dropped;
    ++totals_.tuples_dropped;
    return;  // never acked: the root will fail at the timeout sweep
  }
  task.queue.push_back({std::move(t), now()});
  try_start(dest_task);
}

void Engine::try_start(std::size_t task_id) {
  TaskRuntime& task = tasks_[task_id];
  if (task.busy || task.queue.empty()) return;
  task.busy = true;
  QueuedTuple qt = std::move(task.queue.front());
  task.queue.pop_front();
  Worker& w = workers_[task.worker];
  if (w.stall_until > now()) {
    queue_.schedule_at(w.stall_until, [this, task_id, moved = std::move(qt)]() mutable {
      begin_service(task_id, std::move(moved));
    });
  } else {
    begin_service(task_id, std::move(qt));
  }
}

void Engine::begin_service(std::size_t task_id, QueuedTuple&& qt) {
  TaskRuntime& task = tasks_[task_id];
  Worker& w = workers_[task.worker];
  if (w.stall_until > now()) {
    // The stall was extended while we waited; keep waiting.
    queue_.schedule_at(w.stall_until, [this, task_id, moved = std::move(qt)]() mutable {
      begin_service(task_id, std::move(moved));
    });
    return;
  }
  sim::Machine& m = machines_[w.machine];
  double wait = now() - qt.arrive;
  task.w_queue_wait += wait;
  w.window_queue_wait_sum += wait;

  double cost = task.bolt->tuple_cost(qt.tuple);
  if (cfg_.service_noise_cv > 0.0) {
    cost = rng_service_.lognormal_with_mean(cost, cfg_.service_noise_cv);
  }
  // Quasi-static processor sharing: the interference factor is sampled at
  // service start and held for this tuple (service times are orders of
  // magnitude shorter than load dynamics).
  double speed = m.speed_factor(1.0);
  double duration = cost * w.slowdown / speed;
  m.service_started(now());
  sim::SimTime start = now();
  queue_.schedule_after(duration, [this, task_id, moved = std::move(qt), start, duration]() mutable {
    complete_service(task_id, std::move(moved), start, duration);
  });
}

void Engine::complete_service(std::size_t task_id, QueuedTuple&& qt, sim::SimTime start,
                              double duration) {
  (void)start;
  TaskRuntime& task = tasks_[task_id];
  Worker& w = workers_[task.worker];
  machines_[w.machine].service_finished(now());

  ++task.w_executed;
  task.w_exec_time += duration;
  ++w.window_executed;
  w.window_exec_time_sum += duration;
  w.window_service_seconds += duration;

  auto* collector = static_cast<Collector*>(task.collector.get());
  collector->set_context(qt.tuple.root_id, qt.tuple.root_emit_time);
  task.bolt->execute(qt.tuple, *collector);
  collector->clear_context();
  if (qt.tuple.root_id != 0) acker_.ack_tuple(qt.tuple.root_id, qt.tuple.id, now());

  task.busy = false;
  try_start(task_id);
}

void Engine::sample_window() {
  WindowSample sample;
  sample.time = now();
  sample.window = cfg_.window_seconds;

  sample.tasks.reserve(tasks_.size());
  for (auto& t : tasks_) {
    TaskWindowStats s;
    s.task = t.global_id;
    s.component = components_[t.component].name;
    s.comp_index = t.comp_index;
    s.worker = t.worker;
    s.executed = t.w_executed;
    s.emitted = t.w_emitted;
    s.received = t.w_received;
    s.dropped = t.w_dropped;
    s.avg_exec_latency = t.w_executed > 0 ? t.w_exec_time / static_cast<double>(t.w_executed) : 0.0;
    s.avg_queue_wait = t.w_executed > 0 ? t.w_queue_wait / static_cast<double>(t.w_executed) : 0.0;
    s.queue_len = t.queue.size() + (t.busy ? 1 : 0);
    sample.tasks.push_back(std::move(s));
    t.w_executed = t.w_emitted = t.w_received = t.w_dropped = 0;
    t.w_exec_time = t.w_queue_wait = 0.0;
  }

  sample.workers.reserve(workers_.size());
  for (auto& w : workers_) {
    WorkerWindowStats s;
    s.worker = w.id;
    s.machine = w.machine;
    s.executors = w.executor_tasks.size();
    s.executed = w.window_executed;
    s.emitted = w.window_emitted;
    s.received = w.window_received;
    s.avg_proc_time =
        w.window_executed > 0 ? w.window_exec_time_sum / static_cast<double>(w.window_executed) : 0.0;
    s.avg_queue_wait =
        w.window_executed > 0 ? w.window_queue_wait_sum / static_cast<double>(w.window_executed) : 0.0;
    std::size_t qlen = 0;
    for (std::size_t t : w.executor_tasks) qlen += sample.tasks[t].queue_len;
    s.queue_len = qlen;
    s.cpu_share = w.window_service_seconds / cfg_.window_seconds;
    s.gc_pause = w.window_gc_pause;
    // Synthetic resident memory: base footprint + queued tuples.
    s.mem_mb = 128.0 + 24.0 * static_cast<double>(w.executor_tasks.size()) +
               0.004 * static_cast<double>(qlen);
    sample.workers.push_back(std::move(s));
    w.reset_window();
  }

  sample.machines.reserve(machines_.size());
  for (auto& m : machines_) {
    MachineWindowStats s;
    s.machine = m.id();
    s.cpu_util = m.drain_utilization(now());
    s.load = m.load();
    sample.machines.push_back(s);
  }

  acker_.sweep(now());
  TopologyWindowStats& topo = sample.topology;
  topo.roots_emitted = w_roots_;
  topo.acked = w_acked_;
  topo.failed = w_failed_;
  topo.pending = acker_.pending();
  topo.throughput = static_cast<double>(w_acked_) / cfg_.window_seconds;
  topo.avg_complete_latency =
      w_acked_ > 0 ? w_latency_sum_ / static_cast<double>(w_acked_) : 0.0;
  if (!w_latencies_.empty()) {
    std::sort(w_latencies_.begin(), w_latencies_.end());
    auto idx = static_cast<std::size_t>(0.99 * static_cast<double>(w_latencies_.size() - 1));
    topo.p99_complete_latency = w_latencies_[idx];
  }
  w_roots_ = w_acked_ = w_failed_ = 0;
  w_latency_sum_ = 0.0;
  w_latencies_.clear();

  history_.push_back(std::move(sample));

  // Window-boundary callbacks (windowed aggregation emits happen here).
  for (auto& t : tasks_) {
    if (t.bolt) {
      auto* collector = static_cast<Collector*>(t.collector.get());
      collector->clear_context();
      t.bolt->on_window(now(), *collector);
    }
  }

  fire_control();
  queue_.schedule_after(cfg_.window_seconds, [this] { sample_window(); });
}

void Engine::fire_control() {
  if (!control_fn_ || control_interval_ <= 0.0) return;
  std::size_t every = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(control_interval_ / cfg_.window_seconds)));
  if (history_.size() % every == 0) control_fn_(*this);
}

void Engine::schedule_gc(std::size_t worker) {
  double delay = rng_service_.exponential(1.0 / cfg_.gc_interval_mean);
  queue_.schedule_after(delay, [this, worker] {
    Worker& w = workers_[worker];
    double pause = rng_service_.lognormal_with_mean(cfg_.gc_pause_mean, 0.5);
    w.stall_until = std::max(w.stall_until, now()) + pause;
    w.window_gc_pause += pause;
    schedule_gc(worker);
  });
}

std::shared_ptr<DynamicRatio> Engine::dynamic_ratio(const std::string& from,
                                                    const std::string& to) const {
  for (const auto& b : topo_.bolts) {
    if (b.name != to) continue;
    for (const auto& sub : b.subscriptions) {
      if (sub.from_component == from && sub.grouping.kind == GroupingKind::kDynamic) {
        return sub.grouping.ratio;
      }
    }
  }
  return nullptr;
}

void Engine::set_control_callback(double interval, std::function<void(Engine&)> fn) {
  control_interval_ = interval;
  control_fn_ = std::move(fn);
}

void Engine::set_worker_slowdown(std::size_t worker, double factor) {
  workers_.at(worker).slowdown = std::max(1.0, factor);
}

void Engine::set_worker_drop_prob(std::size_t worker, double probability) {
  workers_.at(worker).drop_prob = std::clamp(probability, 0.0, 1.0);
}

void Engine::stall_worker(std::size_t worker, double duration) {
  Worker& w = workers_.at(worker);
  w.stall_until = std::max(w.stall_until, now()) + duration;
}

void Engine::set_machine_hog(std::size_t machine, double load) {
  machines_.at(machine).set_hog_load(now(), load);
}

void Engine::apply_fault_event(const FaultEvent& ev) {
  switch (ev.kind) {
    case FaultKind::kWorkerSlowdown:
      set_worker_slowdown(ev.target, ev.value);
      break;
    case FaultKind::kMachineHog:
      set_machine_hog(ev.target, ev.value);
      break;
    case FaultKind::kWorkerStall:
      stall_worker(ev.target, ev.value);
      break;
    case FaultKind::kWorkerDrop:
      set_worker_drop_prob(ev.target, ev.value);
      break;
    case FaultKind::kWorkerRamp: {
      // Staircase ramp: 10 equal steps from the current slowdown.
      constexpr int kSteps = 10;
      double from = workers_.at(ev.target).slowdown;
      for (int s = 1; s <= kSteps; ++s) {
        double frac = static_cast<double>(s) / kSteps;
        double factor = from + (ev.value - from) * frac;
        queue_.schedule_after(ev.value2 * frac, [this, target = ev.target, factor] {
          set_worker_slowdown(target, factor);
        });
      }
      break;
    }
  }
}

void Engine::apply_fault_plan(const FaultPlan& plan) {
  for (const auto& ev : plan.events) {
    if (ev.at < now()) throw std::invalid_argument("apply_fault_plan: event in the past");
    queue_.schedule_at(ev.at, [this, ev] { apply_fault_event(ev); });
  }
}

std::pair<std::size_t, std::size_t> Engine::tasks_of(const std::string& component) const {
  auto it = component_index_.find(component);
  if (it == component_index_.end()) throw std::invalid_argument("tasks_of: unknown " + component);
  const ComponentRuntime& c = components_[it->second];
  return {c.first_task, c.first_task + c.parallelism};
}

std::size_t Engine::worker_of_task(std::size_t global_task) const {
  return tasks_.at(global_task).worker;
}

std::vector<std::size_t> Engine::workers_of(const std::string& component) const {
  auto [lo, hi] = tasks_of(component);
  std::vector<std::size_t> out;
  for (std::size_t t = lo; t < hi; ++t) {
    std::size_t w = tasks_[t].worker;
    if (std::find(out.begin(), out.end(), w) == out.end()) out.push_back(w);
  }
  return out;
}

std::size_t Engine::queue_length_of_task(std::size_t global_task) const {
  const TaskRuntime& t = tasks_.at(global_task);
  return t.queue.size() + (t.busy ? 1 : 0);
}

}  // namespace repro::dsps
