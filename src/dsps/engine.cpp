#include "dsps/engine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/logging.hpp"

namespace repro::dsps {

namespace {
Assignment make_assignment(const Topology& topo, const ClusterConfig& cfg) {
  if (cfg.machines == 0 || cfg.workers_per_machine == 0) {
    throw std::invalid_argument("Engine: need machines and workers");
  }
  return interleaved_schedule(topo, cfg.machines * cfg.workers_per_machine, cfg.machines);
}
}  // namespace

/// Per-task OutputCollector implementation: emits land in the task's
/// per-stream coalescing buffer (routed the moment a batch fills — which
/// at batch_size 1 is immediately, the historical behaviour) and are
/// anchored to the input tuple's root while a bolt is mid-execute.
class Engine::Collector : public runtime::TaskCollectorBase {
 public:
  Collector(Engine* engine, std::size_t task)
      : runtime::TaskCollectorBase(&engine->core_, task), engine_(engine) {}

  void emit(Values values, const std::string& stream) override {
    Tuple t;
    t.root_id = current_root_;
    t.root_emit_time = current_root_time_;
    t.stream = stream;
    t.values = std::move(values);
    engine_->buffer_emit(task_, std::move(t));
  }

  sim::SimTime now() const override { return engine_->now(); }

  void set_context(std::uint64_t root, sim::SimTime root_time) {
    current_root_ = root;
    current_root_time_ = root_time;
  }
  void clear_context() {
    current_root_ = 0;
    current_root_time_ = 0.0;
  }

 private:
  Engine* engine_;
  std::uint64_t current_root_ = 0;
  sim::SimTime current_root_time_ = 0.0;
};

Engine::Engine(Topology topology, ClusterConfig config)
    : topo_(std::move(topology)),
      cfg_(config),
      network_(config.network, config.seed),
      acker_(config.ack_timeout),
      rng_service_(config.seed, 0x51),
      rng_drop_(config.seed, 0xd1),
      assignment_(make_assignment(topo_, cfg_)),
      core_(topo_, assignment_, cfg_.seed),
      flow_(cfg_.flow, core_.task_count()),
      history_(cfg_.history_capacity) {
  if (cfg_.flow.policy == runtime::OverflowPolicy::kBlockUpstream &&
      cfg_.max_spout_pending == 0) {
    throw std::invalid_argument(
        "Engine: kBlockUpstream needs max_spout_pending > 0 — backpressure "
        "reaches the spouts through the acker's pending count");
  }
  if (cfg_.batch_size == 0) {
    throw std::invalid_argument("Engine: batch_size must be >= 1");
  }
  if (cfg_.flow.policy == runtime::OverflowPolicy::kBlockUpstream &&
      cfg_.batch_size > cfg_.flow.queue_capacity) {
    throw std::invalid_argument(
        "Engine: batch_size must be <= queue_capacity under kBlockUpstream — "
        "batches park whole, so a larger batch could never be admitted");
  }
  if (!cfg_.machine_cores.empty() && cfg_.machine_cores.size() != cfg_.machines) {
    throw std::invalid_argument(
        "Engine: machine_cores must be empty (uniform) or hold exactly one "
        "entry per machine");
  }
  for (std::size_t m = 0; m < cfg_.machines; ++m) {
    double cores =
        cfg_.machine_cores.empty() ? cfg_.cores_per_machine : cfg_.machine_cores[m];
    if (cores <= 0.0) {
      throw std::invalid_argument("Engine: machine_cores entries must be > 0");
    }
    machines_.emplace_back(m, "machine-" + std::to_string(m), cores);
  }
  std::size_t n_workers = cfg_.machines * cfg_.workers_per_machine;
  workers_.resize(n_workers);
  for (std::size_t w = 0; w < n_workers; ++w) {
    workers_[w].id = w;
    workers_[w].machine = assignment_.worker_to_machine[w];
    workers_[w].executor_tasks = core_.worker_tasks()[w];
  }

  tasks_.resize(core_.task_count());
  for (std::size_t gid = 0; gid < tasks_.size(); ++gid) {
    tasks_[gid].collector = std::make_unique<Collector>(this, gid);
  }
  core_.open_components();

  acker_.set_on_complete([this](std::uint64_t root, double latency, std::size_t spout_task) {
    ++totals_.acked;
    ++w_topo_.acked;
    w_topo_.latency_sum += latency;
    w_topo_.latencies.push_back(latency);
    core_.task(spout_task).spout->on_ack(root);
  });
  acker_.set_on_fail([this](std::uint64_t root, std::size_t spout_task) {
    ++totals_.failed;
    ++w_topo_.failed;
    core_.task(spout_task).spout->on_fail(root);
  });
  acker_.set_on_replay(
      [this](std::uint64_t /*root*/, std::size_t spout_task, Values&& values,
             std::size_t attempt) { replay_root(spout_task, std::move(values), attempt); });
}

Engine::~Engine() = default;

void Engine::run_for(double seconds) { run_until(now() + seconds); }

void Engine::run_until(sim::SimTime t) {
  if (!started_) {
    started_ = true;
    for (std::size_t task = 0; task < core_.task_count(); ++task) {
      if (core_.task(task).spout) schedule_spout_poll(task, 0.0);
    }
    queue_.schedule_after(cfg_.window_seconds, [this] { sample_window(); });
    if (cfg_.gc_interval_mean > 0.0) {
      for (std::size_t w = 0; w < workers_.size(); ++w) schedule_gc(w);
    }
  }
  queue_.run_until(t);
}

void Engine::schedule_spout_poll(std::size_t task, double delay) {
  queue_.schedule_after(std::max(delay, 1e-9), [this, task] { spout_poll(task); });
}

void Engine::spout_poll(std::size_t task) {
  Spout& spout = *core_.task(task).spout;
  if (!workers_[core_.task(task).worker].alive) {
    // Hosting worker is down with no survivor to take the executor; the
    // spout pauses until a restart re-hosts it.
    schedule_spout_poll(task, std::max(spout.next_delay(now()), 1e-3));
    return;
  }
  double delay = spout.next_delay(now());
  if (acker_.pending_for(task) < cfg_.max_spout_pending &&
      tasks_[task].blocked_out == 0) {
    std::optional<Values> vals = spout.next(now());
    if (vals.has_value()) {
      runtime::TupleBatch batch = take_batch();
      batch.stream = kDefaultStream;
      spout_roots_.clear();
      auto pull_root = [&](Values&& v) {
        std::uint64_t root = next_tuple_id_++;
        acker_.register_root(root, now(), task);
        if (cfg_.replay_on_failure) acker_.stash_replay(root, v, 0);
        ++totals_.roots_emitted;
        ++w_topo_.roots_emitted;
        batch.push_row(0, root, now(), std::move(v));
        spout_roots_.push_back(root);
      };
      pull_root(std::move(*vals));
      // Batched pull: up to batch_size roots per poll. Every extra pull
      // consumes its own inter-arrival draw (summed into the poll delay,
      // so the offered rate is unchanged) and re-checks the pending
      // throttle, since each registered root raises the pending count.
      while (batch.size() < cfg_.batch_size &&
             acker_.pending_for(task) < cfg_.max_spout_pending) {
        delay += spout.next_delay(now());
        vals = spout.next(now());
        if (!vals.has_value()) break;
        pull_root(std::move(*vals));
      }
      route_emit_batch(task, batch);
      recycle_batch(std::move(batch));
      for (std::uint64_t root : spout_roots_) acker_.discard_if_unanchored(root, now());
    }
  } else {
    // Backpressure: pending tree limit reached; retry shortly without
    // consuming from the workload generator.
    delay = std::max(delay, 1e-3);
  }
  schedule_spout_poll(task, delay);
}

void Engine::buffer_emit(std::size_t task, Tuple&& t) {
  runtime::TupleBatch* full = tasks_[task].emits.append(std::move(t), cfg_.batch_size);
  if (full != nullptr) {
    route_emit_batch(task, *full);
    full->clear();
  }
}

void Engine::flush_emits(std::size_t task) {
  tasks_[task].emits.flush([&](runtime::TupleBatch& b) { route_emit_batch(task, b); });
}

runtime::TupleBatch Engine::take_batch() {
  if (batch_pool_.empty()) return {};
  runtime::TupleBatch b = std::move(batch_pool_.back());
  batch_pool_.pop_back();
  return b;
}

void Engine::recycle_batch(runtime::TupleBatch&& b) {
  if (batch_pool_.size() >= 1024) return;  // bound the pooled column memory
  b.clear();
  batch_pool_.push_back(std::move(b));
}

void Engine::route_emit_batch(std::size_t src_task, runtime::TupleBatch& batch) {
  if (batch.empty()) return;
  std::size_t src_worker = core_.task(src_task).worker;
  tasks_[src_task].window.emitted += batch.size();
  workers_[src_worker].window.emitted += batch.size();
  core_.route_batch(
      src_task, batch, route_scratch_,
      [&](std::size_t dest, const std::vector<std::uint32_t>& rows, bool may_move) {
        runtime::TupleBatch copy = take_batch();
        copy.stream = batch.stream;
        if (may_move) {
          copy.steal_rows(batch, rows);  // each row consumed once: no payload copy
        } else {
          copy.append_rows(batch, rows);
        }
        const std::size_t m = copy.size();
        for (std::size_t k = 0; k < m; ++k) copy.ids[k] = next_tuple_id_++;
        // Anchor before the admission decision: a parked or shed copy must
        // still hold the tuple tree open (park — so discard_if_unanchored
        // keeps the root; shed — so the root fails at the ack timeout and
        // at-least-once replay covers the loss).
        acker_.add_anchors(copy.root_ids.data(), copy.ids.data(), m);
        totals_.tuples_delivered += m;
        const std::size_t accepted = flow_.admit_n(dest, m);
        if (accepted == m) {
          flow_.acquire_n(dest, m);
          transfer(src_task, dest, std::move(copy));
        } else if (flow_.config().policy == runtime::OverflowPolicy::kBlockUpstream) {
          // Whole-batch park (admit_n never splits a blocked batch).
          tasks_[dest].parked.push_back({std::move(copy), src_task, now()});
          ++tasks_[src_task].blocked_out;
        } else {
          // kDropNewest: the head that fits transfers, the tail sheds —
          // accounted per tuple.
          const std::size_t shed = m - accepted;
          flow_.count_overflow_drops(dest, shed);
          totals_.tuples_dropped_overflow += shed;
          w_topo_.dropped_overflow += shed;
          if (accepted > 0) {
            copy.truncate(accepted);
            flow_.acquire_n(dest, accepted);
            transfer(src_task, dest, std::move(copy));
          } else {
            recycle_batch(std::move(copy));
          }
        }
      });
}

void Engine::transfer(std::size_t src_task, std::size_t dest, runtime::TupleBatch&& b) {
  double delay = network_.transfer_delay(workers_[core_.task(src_task).worker].machine,
                                         workers_[core_.task(dest).worker].machine);
  queue_.schedule_after(delay, [this, dest, moved = std::move(b)]() mutable {
    deliver(dest, std::move(moved));
  });
}

void Engine::drain_parked(std::size_t dest) {
  TaskRuntime& d = tasks_[dest];
  while (!d.parked.empty()) {
    const std::size_t m = d.parked.front().batch.size();
    if (flow_.admit_n(dest, m) != m) break;
    ParkedBatch p = std::move(d.parked.front());
    d.parked.pop_front();
    flow_.acquire_n(dest, m);
    flow_.add_stall(p.src_task, now() - p.parked_at);
    TaskRuntime& src = tasks_[p.src_task];
    if (src.blocked_out > 0) --src.blocked_out;
    transfer(p.src_task, dest, std::move(p.batch));
    // The emitter's last parked batch left: it may start service again
    // (spouts resume on their own next poll).
    if (src.blocked_out == 0) try_start(p.src_task);
  }
}

void Engine::deliver(std::size_t dest_task, runtime::TupleBatch&& b) {
  TaskRuntime& task = tasks_[dest_task];
  Worker& w = workers_[core_.task(dest_task).worker];
  const std::size_t n = b.size();
  task.window.received += n;
  w.window.received += n;
  if (w.drop_prob > 0.0) {
    // Per-tuple fault dice in row order (the draw sequence matches the
    // per-tuple path); survivors compact in place.
    std::size_t kept = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (rng_drop_.bernoulli(w.drop_prob)) continue;
      b.move_row(i, kept);
      ++kept;
    }
    if (kept < n) {
      const std::size_t dropped = n - kept;
      task.window.dropped += dropped;
      totals_.tuples_dropped += dropped;
      b.truncate(kept);
      flow_.release_n(dest_task, dropped);  // the admitted copies are gone
      drain_parked(dest_task);
      if (kept == 0) {
        recycle_batch(std::move(b));
        return;  // never acked: the roots fail at the timeout sweep
      }
    }
  }
  task.queued_tuples += b.size();
  // Destination-side re-coalescing (batch > 1 only): routing fans each
  // batch out into per-destination fragments, so without a merge the
  // effective batch size decays by the fan-out at every hop. Fold the
  // arriving fragment into the queue tail when it fits, so service, acking
  // and the next hop's routing keep full-size batches. The tail keeps its
  // own arrival timestamp (queue-wait is measured from the first fragment).
  if (cfg_.batch_size > 1 && !task.queue.empty()) {
    runtime::TupleBatch& tail = task.queue.back().batch;
    if (tail.stream == b.stream && tail.size() + b.size() <= cfg_.batch_size) {
      tail.append_all(std::move(b));
      recycle_batch(std::move(b));
      start_or_linger(dest_task);
      return;
    }
  }
  task.queue.push_back({std::move(b), now()});
  start_or_linger(dest_task);
}

void Engine::start_or_linger(std::size_t task_id) {
  TaskRuntime& task = tasks_[task_id];
  if (cfg_.batch_size <= 1 || cfg_.batch_linger <= 0.0 || task.busy ||
      task.queued_tuples >= cfg_.batch_size) {
    try_start(task_id);
    return;
  }
  // Partial batch at an idle task: defer the service start so fragments
  // routed from the same upstream batch (and the next few) can merge into
  // the queue tail first. One pending linger event per task; a full batch
  // arriving meanwhile starts immediately above and the stale event
  // no-ops through try_start's busy/empty guards.
  if (task.linger_pending) return;
  task.linger_pending = true;
  queue_.schedule_after(cfg_.batch_linger, [this, task_id] {
    tasks_[task_id].linger_pending = false;
    try_start(task_id);
  });
}

void Engine::try_start(std::size_t task_id) {
  TaskRuntime& task = tasks_[task_id];
  // blocked_out > 0: this task's own emits are parked on a full downstream
  // queue — stop consuming input until the credit comes back (hop-by-hop
  // backpressure propagation).
  if (task.busy || task.queue.empty() || task.blocked_out > 0) return;
  Worker& w = workers_[core_.task(task_id).worker];
  if (!w.alive) return;  // parked on a dead worker (no survivor); restart resumes
  task.busy = true;
  QueuedBatch qb = std::move(task.queue.front());
  task.queue.pop_front();
  task.queued_tuples -= qb.batch.size();
  task.in_service = qb.batch.size();
  task.service_owner = w.id;
  std::size_t owner = w.id;
  std::uint64_t inc = w.incarnation;
  if (w.stall_until > now()) {
    queue_.schedule_at(w.stall_until, [this, task_id, owner, inc, moved = std::move(qb)]() mutable {
      begin_service(task_id, std::move(moved), owner, inc);
    });
  } else {
    begin_service(task_id, std::move(qb), owner, inc);
  }
}

void Engine::begin_service(std::size_t task_id, QueuedBatch&& qb, std::size_t owner,
                           std::uint64_t incarnation) {
  TaskRuntime& task = tasks_[task_id];
  Worker& w = workers_[owner];
  if (w.incarnation != incarnation) {
    // The hosting worker crashed while this batch waited out a stall; the
    // batch was already counted lost at crash time. Nothing was started on
    // the machine yet, so there is nothing to balance.
    return;
  }
  if (w.stall_until > now()) {
    // The stall was extended while we waited; keep waiting.
    queue_.schedule_at(w.stall_until,
                       [this, task_id, owner, incarnation, moved = std::move(qb)]() mutable {
                         begin_service(task_id, std::move(moved), owner, incarnation);
                       });
    return;
  }
  sim::Machine& m = machines_[w.machine];
  const std::size_t n = qb.batch.size();
  double wait = now() - qb.arrive;
  task.window.queue_wait += wait * static_cast<double>(n);
  w.window.queue_wait_sum += wait * static_cast<double>(n);

  // One service event per batch; the base cost accumulates over the rows
  // and the noise is drawn once per service event. At batch size 1 that is
  // exactly the historical per-tuple draw; at batch > 1 the single draw's
  // cv is scaled by 1/sqrt(n), matching (by the CLT) the aggregate
  // variability that n independent per-tuple draws would have produced —
  // and costing one set of transcendentals per batch instead of per row.
  Bolt* bolt = core_.task(task_id).bolt.get();
  double total_cost = 0.0;
  cost_probe_.stream = qb.batch.stream;
  for (std::size_t i = 0; i < n; ++i) {
    qb.batch.borrow_row(i, cost_probe_);
    total_cost += bolt->tuple_cost(cost_probe_);
    qb.batch.restore_row(i, cost_probe_);
  }
  if (cfg_.service_noise_cv > 0.0) {
    if (n == 1) {
      // Exactly the historical draw (including on zero cost — the RNG
      // stream is shared, so the draw itself is part of the contract).
      total_cost = rng_service_.lognormal_with_mean(total_cost, cfg_.service_noise_cv);
    } else if (total_cost > 0.0) {
      total_cost = rng_service_.lognormal_with_mean(
          total_cost, cfg_.service_noise_cv / std::sqrt(static_cast<double>(n)));
    }
  }
  // Quasi-static processor sharing: the interference factor is sampled at
  // service start and held for this batch (service times are orders of
  // magnitude shorter than load dynamics).
  double speed = m.speed_factor(1.0);
  double duration = total_cost * w.slowdown / speed;
  m.service_started(now());
  sim::SimTime start = now();
  queue_.schedule_after(
      duration, [this, task_id, owner, incarnation, moved = std::move(qb), start, duration]() mutable {
        complete_service(task_id, std::move(moved), start, duration, owner, incarnation);
      });
}

void Engine::complete_service(std::size_t task_id, QueuedBatch&& qb, sim::SimTime start,
                              double duration, std::size_t owner, std::uint64_t incarnation) {
  (void)start;
  TaskRuntime& task = tasks_[task_id];
  Worker& w = workers_[owner];
  machines_[w.machine].service_finished(now());
  if (w.incarnation != incarnation) {
    // The worker crashed mid-service: the machine accounting is balanced
    // above, but the batch (already counted lost at crash time) produces
    // no acks and no downstream emits, and the task state belongs to the
    // new incarnation now.
    return;
  }

  const std::size_t n = qb.batch.size();
  task.window.executed += n;
  task.window.exec_time += duration;
  w.window.executed += n;
  w.window.exec_time_sum += duration;
  w.window.service_seconds += duration;
  totals_.tuples_executed += n;

  auto* collector = static_cast<Collector*>(task.collector.get());
  Bolt* bolt = core_.task(task_id).bolt.get();
  exec_probe_.stream = qb.batch.stream;
  for (std::size_t i = 0; i < n; ++i) {
    collector->set_context(qb.batch.root_ids[i], qb.batch.root_emit_times[i]);
    // The value row is consumed by execute (the ack below reads only the
    // id columns), so there is nothing to restore.
    qb.batch.borrow_row(i, exec_probe_);
    bolt->execute(exec_probe_, *collector);
  }
  collector->clear_context();
  // Flush the coalesced emits before acking the inputs: a root acked
  // while its children sit unanchored in an emit buffer would complete
  // its tree early. At batch size 1 the buffer flushed inside execute,
  // so this is a no-op and the order matches the historical path.
  flush_emits(task_id);
  acker_.ack_batch(qb.batch.root_ids.data(), qb.batch.ids.data(), n, now());

  // The serviced batch leaves the bounded in-queue here, where its acks
  // happened: release the credits and re-admit parked upstream batches.
  flow_.release_n(task_id, n);
  task.busy = false;
  task.in_service = 0;
  recycle_batch(std::move(qb.batch));
  drain_parked(task_id);
  try_start(task_id);
}

void Engine::sample_window() {
  WindowSample sample;
  sample.time = now();
  sample.window = cfg_.window_seconds;

  sample.tasks.reserve(tasks_.size());
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    TaskRuntime& t = tasks_[i];
    if (flow_.bounded()) {
      // Fold the flow-control layer's window accumulators into the task
      // counters the finalizer consumes.
      t.window.dropped_overflow += flow_.take_overflow_drops(i);
      t.window.bp_stall += flow_.take_stall(i);
    }
    const runtime::TaskInfo& info = core_.task(i);
    std::size_t queue_len = t.queued_tuples + t.in_service;
    sample.tasks.push_back(runtime::finalize_task_window(
        i, core_.components()[info.component].name, info.comp_index, info.worker, t.window,
        queue_len));
  }

  sample.workers.reserve(workers_.size());
  for (auto& w : workers_) {
    std::size_t qlen = 0;
    for (std::size_t t : w.executor_tasks) {
      qlen += sample.tasks[t].queue_len;
      w.window.bp_stall += sample.tasks[t].bp_stall;
    }
    sample.workers.push_back(runtime::finalize_worker_window(
        w.id, w.machine, w.executor_tasks.size(), w.window, qlen, cfg_.window_seconds));
  }

  sample.machines.reserve(machines_.size());
  for (auto& m : machines_) {
    MachineWindowStats s;
    s.machine = m.id();
    s.cpu_util = m.drain_utilization(now());
    s.load = m.load();
    sample.machines.push_back(s);
  }

  acker_.sweep(now());
  sample.topology = runtime::finalize_topology_window(w_topo_, cfg_.window_seconds,
                                                      acker_.pending());

  history_.push(std::move(sample));

  // Window-boundary callbacks (windowed aggregation emits happen here;
  // each task's coalesced emits flush before the next task's callback).
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (core_.task(i).bolt) {
      auto* collector = static_cast<Collector*>(tasks_[i].collector.get());
      collector->clear_context();
      core_.task(i).bolt->on_window(now(), *collector);
      flush_emits(i);
    }
  }

  fire_control();
  queue_.schedule_after(cfg_.window_seconds, [this] { sample_window(); });
}

void Engine::fire_control() {
  if (!control_fn_ || control_interval_ <= 0.0) return;
  std::size_t every = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(control_interval_ / cfg_.window_seconds)));
  if (history_.total() % every == 0) control_fn_(*this);
}

void Engine::schedule_gc(std::size_t worker) {
  double delay = rng_service_.exponential(1.0 / cfg_.gc_interval_mean);
  queue_.schedule_after(delay, [this, worker] {
    Worker& w = workers_[worker];
    double pause = rng_service_.lognormal_with_mean(cfg_.gc_pause_mean, 0.5);
    if (w.alive) {
      // A dead process does not pause; the draw above still happens so the
      // RNG stream (shared with service-noise sampling) stays aligned
      // between crashing and crash-free runs of the same seed only when
      // both runs schedule the same GC events — which they do.
      w.stall_until = std::max(w.stall_until, now()) + pause;
      w.window.gc_pause += pause;
    }
    schedule_gc(worker);
  });
}

void Engine::replay_root(std::size_t spout_task, Values&& values, std::size_t attempt) {
  if (attempt >= cfg_.max_replays) {
    ++totals_.replays_exhausted;
    return;
  }
  std::uint64_t root = next_tuple_id_++;
  acker_.register_root(root, now(), spout_task);
  acker_.stash_replay(root, values, attempt + 1);
  ++totals_.roots_emitted;
  ++w_topo_.roots_emitted;
  ++totals_.replays;
  // Replays re-emit one root at a time (the sweep hands them back
  // individually), so they ride a single-row batch even at batch_size > 1.
  runtime::TupleBatch batch = take_batch();
  batch.stream = kDefaultStream;
  batch.push_row(0, root, now(), std::move(values));
  route_emit_batch(spout_task, batch);
  recycle_batch(std::move(batch));
  acker_.discard_if_unanchored(root, now());
}

void Engine::refresh_worker_task_mirrors() {
  for (auto& w : workers_) w.executor_tasks = core_.worker_tasks()[w.id];
}

void Engine::crash_worker(std::size_t worker) {
  Worker& w = workers_.at(worker);
  if (!w.alive) return;
  w.alive = false;
  ++w.incarnation;  // invalidates every in-flight service completion
  ++w.crashes;
  ++totals_.worker_crashes;
  w.slowdown = 1.0;
  w.drop_prob = 0.0;
  w.stall_until = 0.0;
  // In-flight services die with the machine running them, wherever the
  // task is hosted now: a graceful migration can leave a batch completing
  // on the task's previous host, so the wipe keys on the serving worker,
  // not the placement table. (The incarnation bump above already
  // invalidated these batches' completion events.)
  std::vector<std::size_t> interrupted;
  for (std::size_t t = 0; t < tasks_.size(); ++t) {
    TaskRuntime& task = tasks_[t];
    if (!task.busy || task.service_owner != worker) continue;
    totals_.tuples_lost += task.in_service;
    flow_.release_n(t, task.in_service);
    task.busy = false;
    task.in_service = 0;
    if (core_.task(t).worker != worker) interrupted.push_back(t);
  }
  // The process also dies with everything its hosted tasks still queued.
  // A hosted task whose batch is mid-service on its previous (alive) host
  // keeps that service: the completion there balances the books.
  std::vector<std::size_t> cleared_tasks = w.executor_tasks;
  for (std::size_t t : cleared_tasks) {
    TaskRuntime& task = tasks_[t];
    std::size_t wiped = task.queued_tuples;
    totals_.tuples_lost += wiped;
    task.queue.clear();
    task.queued_tuples = 0;
    flow_.release_n(t, wiped);  // the dead queue's credits come back
  }
  if (flow_.bounded()) {
    // Batches parked at emit sites inside the dead process die with it
    // (they live in its transfer layer); their roots fail at the ack
    // timeout like any crash loss. Unblock the emitters being reassigned.
    for (auto& dest : tasks_) {
      for (auto it = dest.parked.begin(); it != dest.parked.end();) {
        if (core_.task(it->src_task).worker == worker) {
          totals_.tuples_lost += it->batch.size();
          TaskRuntime& src = tasks_[it->src_task];
          if (src.blocked_out > 0) --src.blocked_out;
          it = dest.parked.erase(it);
        } else {
          ++it;
        }
      }
    }
  }
  // Reassignment candidates: alive AND active — a retired worker must not
  // pick up a dead one's executors.
  std::vector<bool> alive(workers_.size(), false);
  bool any_alive = false;
  for (const auto& ww : workers_) {
    alive[ww.id] = ww.alive && ww.active;
    any_alive = any_alive || alive[ww.id];
  }
  if (any_alive) {
    // Supervisor reassignment: deterministic least-loaded policy shared
    // with the rt backend, so recovered routing tables match across
    // backends.
    for (const TaskMove& m : plan_crash_reassignment(core_.worker_tasks(), worker, alive)) {
      core_.reassign_task(m.task, m.to_worker);
    }
    refresh_worker_task_mirrors();
  }
  // else: total outage — executors stay parked on the dead worker and
  // resume on restart.
  if (flow_.bounded()) {
    // The wiped queues freed credit: re-admit tuples parked at those
    // tasks' gates (after reassignment, so transfers see the new hosts).
    for (std::size_t t : cleared_tasks) drain_parked(t);
  }
  // Tasks hosted elsewhere whose service this crash interrupted resume on
  // their own (alive) hosts.
  for (std::size_t t : interrupted) try_start(t);
}

void Engine::restart_worker(std::size_t worker) {
  Worker& w = workers_.at(worker);
  if (w.alive) return;
  w.alive = true;
  ++totals_.worker_restarts;
  if (!w.active) return;  // retired: rejoin the pool but host nothing
  // Reclaim the originally assigned executors (graceful migration: the
  // per-task queues live with the task, so queued tuples move with it; an
  // in-flight service on the interim host completes there first).
  for (std::size_t t = 0; t < core_.task_count(); ++t) {
    if (assignment_.task_to_worker[t] == worker && core_.task(t).worker != worker) {
      core_.reassign_task(t, worker);
    }
  }
  refresh_worker_task_mirrors();
  for (std::size_t t : workers_.at(worker).executor_tasks) try_start(t);
}

bool Engine::worker_alive(std::size_t worker) const { return workers_.at(worker).alive; }

bool Engine::worker_active(std::size_t worker) const { return workers_.at(worker).active; }

std::vector<std::vector<std::size_t>> Engine::worker_task_snapshot() const {
  return core_.worker_tasks();
}

void Engine::add_worker(std::size_t worker) {
  Worker& w = workers_.at(worker);
  if (w.active) return;
  w.active = true;
  ++totals_.worker_adds;
}

void Engine::retire_worker(std::size_t worker) {
  Worker& w = workers_.at(worker);
  if (!w.active) return;
  w.active = false;
  if (w.alive && !w.executor_tasks.empty()) {
    std::vector<bool> hosts(workers_.size(), false);
    bool any_host = false;
    for (const auto& ww : workers_) {
      hosts[ww.id] = ww.alive && ww.active;
      any_host = any_host || hosts[ww.id];
    }
    if (!any_host) {
      w.active = true;  // fail closed: the pool must keep a host
      throw std::invalid_argument("retire_worker: no active worker left to host worker " +
                                  std::to_string(worker) + "'s executors");
    }
    // Graceful drain via the shared deterministic policy, so the
    // post-retire routing tables match across backends.
    perform_migrations(plan_crash_reassignment(core_.worker_tasks(), worker, hosts));
  }
  ++totals_.worker_retires;
}

void Engine::migrate_tasks(const std::vector<TaskMove>& moves) {
  for (std::size_t i = 0; i < moves.size(); ++i) {
    const TaskMove& m = moves[i];
    const std::string field = "migrate_tasks: moves[" + std::to_string(i) + "]";
    if (m.task >= core_.task_count()) {
      throw std::invalid_argument(field + ".task: no task " + std::to_string(m.task));
    }
    if (m.to_worker >= workers_.size()) {
      throw std::invalid_argument(field + ".to_worker: no worker " +
                                  std::to_string(m.to_worker));
    }
    const Worker& dest = workers_[m.to_worker];
    if (!dest.alive) {
      throw std::invalid_argument(field + ".to_worker: worker " + std::to_string(m.to_worker) +
                                  " is dead");
    }
    if (!dest.active) {
      throw std::invalid_argument(field + ".to_worker: worker " + std::to_string(m.to_worker) +
                                  " is retired");
    }
  }
  perform_migrations(moves);
}

void Engine::perform_migrations(const std::vector<TaskMove>& moves) {
  bool moved = false;
  for (const TaskMove& m : moves) {
    std::size_t from = core_.task(m.task).worker;
    if (from == m.to_worker) continue;
    core_.reassign_task(m.task, m.to_worker);
    ++totals_.task_migrations;
    // Modeled state handoff: checkpoint on the source, restore on the
    // destination — both stall for the configured pause. Stalls
    // accumulate, so a larger rescale batch costs proportionally more.
    stall_worker(from, cfg_.rescale_pause);
    stall_worker(m.to_worker, cfg_.rescale_pause);
    moved = true;
  }
  if (!moved) return;
  refresh_worker_task_mirrors();
  // Tuple-conserving handoff: the per-task queues travel with the task;
  // the new host resumes service on whatever is queued.
  for (const TaskMove& m : moves) try_start(m.task);
}

void Engine::set_link_extra_delay(std::size_t machine_a, std::size_t machine_b,
                                  double extra_seconds) {
  network_.set_link_extra_delay(machine_a, machine_b, extra_seconds);
}

std::string Engine::placement_audit() const {
  std::string audit = core_.placement_audit();
  if (!audit.empty()) return audit;
  bool any_alive = false;
  bool any_active = false;
  for (const auto& w : workers_) {
    any_alive = any_alive || w.alive;
    any_active = any_active || (w.alive && w.active);
  }
  for (const auto& w : workers_) {
    if (w.executor_tasks != core_.worker_tasks()[w.id]) {
      return "engine mirror of worker " + std::to_string(w.id) + "'s task list is stale";
    }
    if (!w.alive && any_alive && !w.executor_tasks.empty()) {
      return "dead worker " + std::to_string(w.id) + " still hosts executors";
    }
    if (w.alive && !w.active && any_active && !w.executor_tasks.empty()) {
      return "retired worker " + std::to_string(w.id) + " still hosts executors";
    }
  }
  return {};
}

std::shared_ptr<DynamicRatio> Engine::dynamic_ratio(const std::string& from,
                                                    const std::string& to) const {
  return runtime::find_dynamic_ratio(topo_, from, to);
}

std::vector<runtime::DynamicEdge> Engine::dynamic_edges() const {
  return runtime::list_dynamic_edges(topo_);
}

void Engine::set_control_callback(double interval, std::function<void(Engine&)> fn) {
  control_interval_ = interval;
  control_fn_ = std::move(fn);
}

void Engine::set_control_hook(double interval, runtime::ControlSurface::ControlHook hook) {
  set_control_callback(interval, [hook = std::move(hook)](Engine& engine) { hook(engine); });
}

void Engine::set_max_spout_pending(std::size_t cap) {
  if (cfg_.flow.policy == runtime::OverflowPolicy::kBlockUpstream && cap == 0) {
    throw std::invalid_argument(
        "Engine::set_max_spout_pending: kBlockUpstream needs a cap > 0 — "
        "backpressure reaches the spouts through the acker's pending count");
  }
  cfg_.max_spout_pending = cap;
}

void Engine::set_worker_slowdown(std::size_t worker, double factor) {
  workers_.at(worker).slowdown = std::max(1.0, factor);
}

void Engine::set_worker_drop_prob(std::size_t worker, double probability) {
  workers_.at(worker).drop_prob = std::clamp(probability, 0.0, 1.0);
}

double Engine::worker_slowdown(std::size_t worker) const {
  return workers_.at(worker).slowdown;
}

double Engine::worker_drop_prob(std::size_t worker) const {
  return workers_.at(worker).drop_prob;
}

void Engine::stall_worker(std::size_t worker, double duration) {
  Worker& w = workers_.at(worker);
  w.stall_until = std::max(w.stall_until, now()) + duration;
}

void Engine::set_machine_hog(std::size_t machine, double load) {
  machines_.at(machine).set_hog_load(now(), load);
}

void Engine::apply_fault_event(const FaultEvent& ev) {
  switch (ev.kind) {
    case FaultKind::kWorkerSlowdown:
      set_worker_slowdown(ev.target, ev.value);
      break;
    case FaultKind::kMachineHog:
      set_machine_hog(ev.target, ev.value);
      break;
    case FaultKind::kWorkerStall:
      stall_worker(ev.target, ev.value);
      break;
    case FaultKind::kWorkerDrop:
      set_worker_drop_prob(ev.target, ev.value);
      break;
    case FaultKind::kWorkerCrash:
      crash_worker(ev.target);
      break;
    case FaultKind::kWorkerRestart:
      restart_worker(ev.target);
      break;
    case FaultKind::kLinkDelay:
      set_link_extra_delay(ev.target, static_cast<std::size_t>(ev.value2), ev.value);
      break;
    case FaultKind::kWorkerRamp: {
      // Staircase ramp: 10 equal steps from the current slowdown.
      constexpr int kSteps = 10;
      double from = workers_.at(ev.target).slowdown;
      for (int s = 1; s <= kSteps; ++s) {
        double frac = static_cast<double>(s) / kSteps;
        double factor = from + (ev.value - from) * frac;
        queue_.schedule_after(ev.value2 * frac, [this, target = ev.target, factor] {
          set_worker_slowdown(target, factor);
        });
      }
      break;
    }
  }
}

void Engine::apply_fault_plan(const FaultPlan& plan) {
  for (const auto& ev : plan.events) {
    if (ev.at < now()) throw std::invalid_argument("apply_fault_plan: event in the past");
    queue_.schedule_at(ev.at, [this, ev] { apply_fault_event(ev); });
  }
}

std::pair<std::size_t, std::size_t> Engine::tasks_of(const std::string& component) const {
  return core_.tasks_of(component);
}

std::size_t Engine::worker_of_task(std::size_t global_task) const {
  return core_.worker_of_task(global_task);
}

std::vector<std::size_t> Engine::workers_of(const std::string& component) const {
  return core_.workers_of(component);
}

std::size_t Engine::queue_length_of_task(std::size_t global_task) const {
  const TaskRuntime& t = tasks_.at(global_task);
  return t.queued_tuples + t.in_service;
}

std::size_t Engine::parked_tuples() const {
  std::size_t n = 0;
  for (const auto& t : tasks_) {
    for (const auto& p : t.parked) n += p.batch.size();
  }
  return n;
}

}  // namespace repro::dsps
