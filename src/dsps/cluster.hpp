#pragma once
// Cluster-level configuration for the simulated deployment.
#include <cstdint>

#include "runtime/flow_control.hpp"
#include "sim/network.hpp"

namespace repro::dsps {

struct ClusterConfig {
  std::size_t machines = 3;
  double cores_per_machine = 4.0;
  /// Heterogeneous cluster override: per-machine core counts. Empty (the
  /// default) gives every machine cores_per_machine; otherwise must hold
  /// exactly `machines` entries, each > 0 (validated by the engine).
  std::vector<double> machine_cores;
  std::size_t workers_per_machine = 2;
  sim::NetworkConfig network{};

  /// Metrics-sampling window (the paper's runtime-statistics granularity).
  double window_seconds = 1.0;
  /// Coefficient of variation of per-tuple service-time noise.
  double service_noise_cv = 0.15;
  /// Tuple-tree timeout: unacked roots older than this are failed.
  double ack_timeout = 10.0;
  /// Spout throttling (Storm's max.spout.pending), per spout task.
  std::size_t max_spout_pending = 5000;

  /// Synthetic JVM-like GC pauses per worker; 0 disables.
  double gc_interval_mean = 0.0;  ///< mean seconds between pauses
  double gc_pause_mean = 0.04;    ///< mean pause length (seconds)

  /// Window-history retention (runtime::WindowHistory capacity): at least
  /// this many most-recent windows are kept. 0 = unbounded — the default,
  /// because the experiment harnesses read whole-run histories; long-lived
  /// deployments should bound it.
  std::size_t history_capacity = 0;

  /// At-least-once delivery: when true, the engine stashes every spout
  /// tuple's values and re-emits them under a fresh root id when the tuple
  /// tree fails (ack timeout — e.g. tuples lost in a worker crash), up to
  /// max_replays attempts per original tuple. Off by default so the
  /// recorded experiment baselines are untouched.
  bool replay_on_failure = false;
  std::size_t max_replays = 12;

  /// Columnar batched data path: tuples coalesced into one TupleBatch at
  /// every emit site (spout pulls and bolt emit buffers) before routing.
  /// 1 — the default — reproduces the historical per-tuple event sequence
  /// byte-for-byte; larger values amortize the per-item routing, credit,
  /// network and acker work over whole batches. Under kBlockUpstream it
  /// must be <= flow.queue_capacity, because batches park whole and a
  /// batch larger than the capacity could never be admitted.
  std::size_t batch_size = 1;

  /// Batch linger (simulated seconds; batch_size > 1 only): when a partial
  /// batch reaches an idle task, service start is deferred by up to this
  /// long so later-arriving fragments of the same routed batch can merge
  /// back up to batch_size (routing fans batches out per destination, so
  /// without a linger the effective batch decays by the fan-out at every
  /// hop). A full batch always starts immediately; at batch_size 1 the
  /// linger is ignored and service starts on arrival, byte-identically to
  /// the historical path. Trades bounded latency for amortization, exactly
  /// like Kafka's linger.ms / Storm's batch flush interval.
  double batch_linger = 2e-3;

  /// Bounded data path (runtime::FlowControl): per-task in-queue capacity
  /// and overflow policy. Default kUnbounded keeps the historical
  /// byte-identical behaviour. With kBlockUpstream, max_spout_pending must
  /// stay > 0 — backpressure reaches the spouts through the acker's
  /// pending count, and an unthrottled spout against blocking queues would
  /// park unboundedly at the emit site.
  runtime::FlowControlConfig flow{};

  /// Modeled rescale cost: every planned executor migration stalls both
  /// endpoint workers (source and destination) for this long — the
  /// state-handoff pause of checkpointing/restoring the executor. Applied
  /// only by the elastic-scaling actuators, so existing runs are
  /// byte-identical; stalls accumulate across moves in one rescale batch.
  double rescale_pause = 0.05;

  std::uint64_t seed = 42;
};

}  // namespace repro::dsps
