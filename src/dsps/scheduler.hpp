#pragma once
// Task placement, mirroring Storm's EvenScheduler: executors are assigned
// round-robin across worker slots, worker slots round-robin across
// machines.
#include <cstddef>
#include <vector>

#include "dsps/topology.hpp"

namespace repro::dsps {

struct Assignment {
  std::vector<std::size_t> task_to_worker;     ///< indexed by global task id
  std::vector<std::size_t> worker_to_machine;  ///< indexed by worker id

  std::size_t workers() const { return worker_to_machine.size(); }
};

/// Storm-style even scheduling. Global task ids are assigned in topology
/// declaration order (spouts first, then bolts), each component's tasks
/// consecutive.
Assignment even_schedule(const Topology& topo, std::size_t n_workers, std::size_t n_machines);

/// Round-robin within each component, offset so consecutive components
/// start at different workers (spreads heavy bolts more evenly).
Assignment interleaved_schedule(const Topology& topo, std::size_t n_workers,
                                std::size_t n_machines);

/// One executor move of a supervisor reassignment.
struct TaskMove {
  std::size_t task = 0;
  std::size_t from_worker = 0;
  std::size_t to_worker = 0;
};

/// Deterministic supervisor policy for a crashed worker: its executors
/// (in task-id order) each go to the surviving worker with the fewest
/// executors at that point (counting earlier moves), ties broken by the
/// lower worker id. Both engines use this policy, so recovered routing
/// tables are identical across backends. Throws std::invalid_argument
/// when no surviving worker exists.
std::vector<TaskMove> plan_crash_reassignment(
    const std::vector<std::vector<std::size_t>>& worker_tasks, std::size_t dead_worker,
    const std::vector<bool>& alive);

}  // namespace repro::dsps
