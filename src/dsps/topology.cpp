#include "dsps/topology.hpp"

#include <stdexcept>
#include <unordered_set>

namespace repro::dsps {

bool Topology::has_component(const std::string& comp) const {
  for (const auto& s : spouts) {
    if (s.name == comp) return true;
  }
  for (const auto& b : bolts) {
    if (b.name == comp) return true;
  }
  return false;
}

std::size_t Topology::parallelism_of(const std::string& comp) const {
  for (const auto& s : spouts) {
    if (s.name == comp) return s.parallelism;
  }
  for (const auto& b : bolts) {
    if (b.name == comp) return b.parallelism;
  }
  throw std::invalid_argument("Topology: unknown component " + comp);
}

std::size_t Topology::total_tasks() const {
  std::size_t n = 0;
  for (const auto& s : spouts) n += s.parallelism;
  for (const auto& b : bolts) n += b.parallelism;
  return n;
}

BoltDeclarer& BoltDeclarer::grouping(const std::string& from, GroupingSpec spec,
                                     const std::string& stream) {
  topo_->bolts[index_].subscriptions.push_back({from, stream, std::move(spec)});
  return *this;
}

BoltDeclarer& BoltDeclarer::shuffle_grouping(const std::string& from, const std::string& stream) {
  return grouping(from, GroupingSpec::shuffle(), stream);
}

BoltDeclarer& BoltDeclarer::fields_grouping(const std::string& from,
                                            std::vector<std::size_t> field_indexes,
                                            const std::string& stream) {
  return grouping(from, GroupingSpec::fields(std::move(field_indexes)), stream);
}

BoltDeclarer& BoltDeclarer::all_grouping(const std::string& from, const std::string& stream) {
  return grouping(from, GroupingSpec::all(), stream);
}

BoltDeclarer& BoltDeclarer::global_grouping(const std::string& from, const std::string& stream) {
  return grouping(from, GroupingSpec::global(), stream);
}

BoltDeclarer& BoltDeclarer::local_or_shuffle_grouping(const std::string& from,
                                                      const std::string& stream) {
  return grouping(from, GroupingSpec::local_or_shuffle(), stream);
}

BoltDeclarer& BoltDeclarer::partial_key_grouping(const std::string& from,
                                                 std::vector<std::size_t> field_indexes,
                                                 const std::string& stream) {
  return grouping(from, GroupingSpec::partial_key(std::move(field_indexes)), stream);
}

std::shared_ptr<DynamicRatio> BoltDeclarer::dynamic_grouping(const std::string& from,
                                                             const std::string& stream) {
  auto ratio = std::make_shared<DynamicRatio>(topo_->bolts[index_].parallelism);
  grouping(from, GroupingSpec::dynamic(ratio), stream);
  return ratio;
}

TopologyBuilder::TopologyBuilder(std::string name) { topo_.name = std::move(name); }

TopologyBuilder& TopologyBuilder::set_spout(const std::string& name, SpoutFactory factory,
                                            std::size_t parallelism) {
  if (topo_.has_component(name)) throw std::invalid_argument("duplicate component: " + name);
  if (parallelism == 0) throw std::invalid_argument("parallelism must be >= 1: " + name);
  topo_.spouts.push_back({name, std::move(factory), parallelism});
  return *this;
}

BoltDeclarer TopologyBuilder::set_bolt(const std::string& name, BoltFactory factory,
                                       std::size_t parallelism) {
  if (topo_.has_component(name)) throw std::invalid_argument("duplicate component: " + name);
  if (parallelism == 0) throw std::invalid_argument("parallelism must be >= 1: " + name);
  topo_.bolts.push_back({name, std::move(factory), parallelism, {}});
  return BoltDeclarer(topo_, topo_.bolts.size() - 1);
}

Topology TopologyBuilder::build() {
  if (built_) throw std::logic_error("TopologyBuilder::build called twice");
  for (const auto& bolt : topo_.bolts) {
    if (bolt.subscriptions.empty()) {
      throw std::invalid_argument("bolt has no input streams: " + bolt.name);
    }
    for (const auto& sub : bolt.subscriptions) {
      if (!topo_.has_component(sub.from_component)) {
        throw std::invalid_argument("bolt " + bolt.name + " subscribes to unknown component " +
                                    sub.from_component);
      }
      if (sub.grouping.kind == GroupingKind::kDynamic) {
        if (!sub.grouping.ratio) {
          throw std::invalid_argument("dynamic grouping without ratio on bolt " + bolt.name);
        }
        if (sub.grouping.ratio->size() != bolt.parallelism) {
          throw std::invalid_argument("dynamic ratio size mismatch on bolt " + bolt.name);
        }
      }
    }
  }
  built_ = true;
  return std::move(topo_);
}

}  // namespace repro::dsps
