#pragma once
// User-facing component interfaces (the public API applications implement),
// mirroring Storm's spout/bolt model with auto-acking bolt semantics.
#include <optional>
#include <string>

#include "dsps/tuple.hpp"
#include "sim/clock.hpp"

namespace repro::dsps {

/// Handed to components during execution for emitting downstream tuples.
/// Emits from a bolt are automatically anchored to the input tuple's root.
class OutputCollector {
 public:
  virtual ~OutputCollector() = default;
  virtual void emit(Values values, const std::string& stream = kDefaultStream) = 0;
  virtual sim::SimTime now() const = 0;
  virtual std::size_t task_index() const = 0;   ///< index within the component
  virtual std::size_t peer_count() const = 0;   ///< component parallelism
};

/// Stream source. The engine polls each spout task: `next_delay` paces the
/// arrival process, `next` produces the tuple values (or nothing, e.g.
/// during a workload lull).
class Spout {
 public:
  virtual ~Spout() = default;
  virtual void open(std::size_t task_index, std::size_t peer_count) {
    (void)task_index;
    (void)peer_count;
  }
  /// Seconds until the next emission attempt.
  virtual double next_delay(sim::SimTime now) = 0;
  /// Values for the next tuple, or nullopt to skip this slot.
  virtual std::optional<Values> next(sim::SimTime now) = 0;
  /// The tuple tree rooted at `root_id` fully processed.
  virtual void on_ack(std::uint64_t root_id) { (void)root_id; }
  /// The tuple tree failed (timeout or drop); a reliable spout may replay.
  virtual void on_fail(std::uint64_t root_id) { (void)root_id; }
};

/// Stream operator. `execute` performs the logical work and emits derived
/// tuples; the simulated CPU cost is `tuple_cost` (scaled by machine
/// interference and worker health at runtime). Successful execution
/// auto-acks the input.
class Bolt {
 public:
  virtual ~Bolt() = default;
  virtual void prepare(std::size_t task_index, std::size_t peer_count) {
    (void)task_index;
    (void)peer_count;
  }
  virtual void execute(const Tuple& input, OutputCollector& out) = 0;
  /// Called at every metrics-window boundary (window/tick processing).
  virtual void on_window(sim::SimTime now, OutputCollector& out) {
    (void)now;
    (void)out;
  }
  /// Simulated CPU seconds to process `input` on an unloaded core.
  virtual double tuple_cost(const Tuple& input) const {
    (void)input;
    return 100e-6;
  }
};

}  // namespace repro::dsps
