#include "apps/url_count.hpp"

namespace repro::apps {

void PartialUrlCounter::execute(const dsps::Tuple& input, dsps::OutputCollector&) {
  ++counts_[input.as_string(0)];
  ++total_;
}

void PartialUrlCounter::on_window(sim::SimTime, dsps::OutputCollector& out) {
  for (auto& [url, count] : counts_) {
    out.emit({url, count});
  }
  counts_.clear();
}

void UrlAggregator::execute(const dsps::Tuple& input, dsps::OutputCollector&) {
  const std::string& url = input.as_string(0);
  std::int64_t count = input.as_int(1);
  window_counts_[url] += count;
  grand_total_ += count;
}

void UrlAggregator::on_window(sim::SimTime, dsps::OutputCollector&) {
  for (const auto& [url, count] : window_counts_) {
    if (count > top_count_) {
      top_count_ = count;
      top_url_ = url;
    }
  }
  window_counts_.clear();
}

BuiltApp build_url_count(const UrlCountOptions& options) {
  dsps::TopologyBuilder builder("url-count");
  builder.set_spout("urls", [spout = options.spout] { return std::make_unique<UrlSpout>(spout); },
                    options.spout_parallelism);

  auto counter = builder.set_bolt(
      "counter", [cost = options.counter_cost] { return std::make_unique<PartialUrlCounter>(cost); },
      options.counter_parallelism);

  BuiltApp app;
  if (options.use_dynamic_grouping) {
    app.ratio = counter.dynamic_grouping("urls");
  } else {
    counter.shuffle_grouping("urls");
  }

  builder
      .set_bolt("aggregator",
                [cost = options.aggregator_cost] { return std::make_unique<UrlAggregator>(cost); },
                options.aggregator_parallelism)
      .fields_grouping("counter", {0});

  app.topology = builder.build();
  app.spout_name = "urls";
  app.control_bolt = "counter";
  app.sink_name = "aggregator";
  return app;
}

}  // namespace repro::apps
