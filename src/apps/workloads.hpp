#pragma once
// Workload generators: the spouts that drive the two evaluation
// applications. Rates are time-varying (diurnal sinusoid plus optional
// bursts) so performance prediction is a non-trivial forecasting problem.
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "dsps/component.hpp"

namespace repro::apps {

/// One piecewise phase of a rate schedule: from `at` seconds on, the
/// profile's rate is multiplied by `factor`, reached via a linear ramp
/// over `ramp_seconds` (0 = step change). Phases compose flash crowds,
/// staged ramps and load sheds on top of the base diurnal profile.
struct RatePhase {
  double at = 0.0;
  double factor = 1.0;
  double ramp_seconds = 0.0;
};

/// Time-varying arrival rate: base + amplitude * sin(2*pi*t/period), with
/// occasional multiplicative bursts and an optional piecewise phase
/// schedule (empty = the historical pure-sinusoid behaviour).
struct RateProfile {
  double base_rate = 2500.0;    ///< tuples/second
  double amplitude = 1200.0;
  double period = 60.0;         ///< seconds
  double burst_prob = 0.0;      ///< per-second probability a burst starts
  double burst_factor = 2.0;
  double burst_duration = 5.0;
  /// Phase schedule, ascending by `at`. Factors multiply the sinusoid.
  std::vector<RatePhase> phases;

  double rate_at(double t) const;
  /// The phase multiplier in effect at time t (1.0 with no phases).
  double phase_factor_at(double t) const;
};

/// Zipf-distributed URL stream (Windowed URL Count application).
class UrlSpout final : public dsps::Spout {
 public:
  struct Options {
    std::size_t n_urls = 400;
    double zipf_s = 1.0;
    RateProfile rate{};
    std::uint64_t seed = 1;
  };

  explicit UrlSpout(Options options);

  void open(std::size_t task_index, std::size_t peer_count) override;
  double next_delay(sim::SimTime now) override;
  std::optional<dsps::Values> next(sim::SimTime now) override;

 private:
  Options opts_;
  common::Pcg32 rng_;
  common::ZipfSampler zipf_;
  std::size_t peers_ = 1;
  double burst_until_ = -1.0;
  double last_burst_check_ = 0.0;
};

/// Sensor-reading stream (Continuous Queries application): readings are
/// per-sensor random walks, so range predicates have temporally coherent
/// selectivity.
class SensorSpout final : public dsps::Spout {
 public:
  struct Options {
    std::size_t n_sensors = 64;
    double value_lo = 0.0;
    double value_hi = 100.0;
    double walk_step = 2.0;
    RateProfile rate{};
    std::uint64_t seed = 2;
  };

  explicit SensorSpout(Options options);

  void open(std::size_t task_index, std::size_t peer_count) override;
  double next_delay(sim::SimTime now) override;
  std::optional<dsps::Values> next(sim::SimTime now) override;

 private:
  Options opts_;
  common::Pcg32 rng_;
  std::vector<double> values_;
  std::size_t peers_ = 1;
};

}  // namespace repro::apps
