#pragma once
// Windowed URL Count — evaluation application #1.
//
//   url-spout --(dynamic|shuffle)--> counter --(fields by url)--> aggregator
//
// The counter keeps per-window partial counts; at each window boundary it
// emits (url, partial_count) tuples that the aggregator merges, so the
// count is correct under *any* split ratio — which is exactly what lets
// dynamic grouping re-direct tuples away from a misbehaving worker without
// corrupting results.
#include <memory>
#include <string>
#include <unordered_map>

#include "dsps/component.hpp"
#include "dsps/topology.hpp"
#include "apps/workloads.hpp"

namespace repro::apps {

/// Counts URLs within the current window; emits partials at the boundary.
class PartialUrlCounter final : public dsps::Bolt {
 public:
  explicit PartialUrlCounter(double cost_seconds = 90e-6) : cost_(cost_seconds) {}

  void execute(const dsps::Tuple& input, dsps::OutputCollector& out) override;
  void on_window(sim::SimTime now, dsps::OutputCollector& out) override;
  double tuple_cost(const dsps::Tuple&) const override { return cost_; }

  std::uint64_t total_seen() const { return total_; }

 private:
  double cost_;
  std::unordered_map<std::string, std::int64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Merges partial counts per window; tracks the current top URL.
class UrlAggregator final : public dsps::Bolt {
 public:
  explicit UrlAggregator(double cost_seconds = 25e-6) : cost_(cost_seconds) {}

  void execute(const dsps::Tuple& input, dsps::OutputCollector& out) override;
  void on_window(sim::SimTime now, dsps::OutputCollector& out) override;
  double tuple_cost(const dsps::Tuple&) const override { return cost_; }

  std::int64_t grand_total() const { return grand_total_; }
  const std::string& top_url() const { return top_url_; }
  std::int64_t top_count() const { return top_count_; }

 private:
  double cost_;
  std::unordered_map<std::string, std::int64_t> window_counts_;
  std::int64_t grand_total_ = 0;
  std::string top_url_;
  std::int64_t top_count_ = 0;
};

struct UrlCountOptions {
  UrlSpout::Options spout{};
  std::size_t spout_parallelism = 1;
  std::size_t counter_parallelism = 4;
  std::size_t aggregator_parallelism = 2;
  /// true: spout->counter uses dynamic grouping (controllable);
  /// false: plain shuffle (the stock-Storm baseline).
  bool use_dynamic_grouping = true;
  double counter_cost = 200e-6;
  double aggregator_cost = 25e-6;
};

struct BuiltApp {
  dsps::Topology topology;
  std::shared_ptr<dsps::DynamicRatio> ratio;  ///< null when not dynamic
  std::string spout_name;
  std::string control_bolt;   ///< the dynamic-grouped component
  std::string sink_name;
};

BuiltApp build_url_count(const UrlCountOptions& options);

}  // namespace repro::apps
