#include "apps/continuous_query.hpp"

#include <algorithm>

namespace repro::apps {

std::vector<RangeQuery> make_queries(std::size_t count, std::size_t n_sensors,
                                     std::uint64_t seed) {
  common::Pcg32 rng(seed, 0xc1);
  std::vector<RangeQuery> queries;
  queries.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    RangeQuery q;
    q.id = static_cast<std::int64_t>(i);
    auto a = rng.bounded(static_cast<std::uint32_t>(n_sensors));
    auto b = rng.bounded(static_cast<std::uint32_t>(n_sensors));
    q.sensor_lo = static_cast<std::int64_t>(std::min(a, b));
    q.sensor_hi = static_cast<std::int64_t>(std::max(a, b));
    double lo = rng.uniform(0.0, 100.0);
    double hi = rng.uniform(0.0, 100.0);
    q.value_lo = std::min(lo, hi);
    q.value_hi = std::max(lo, hi);
    queries.push_back(q);
  }
  return queries;
}

QueryBolt::QueryBolt(std::vector<RangeQuery> queries, double cost_per_query, double base_cost)
    : queries_(std::move(queries)),
      partials_(queries_.size()),
      cost_per_query_(cost_per_query),
      base_cost_(base_cost) {}

double QueryBolt::tuple_cost(const dsps::Tuple&) const {
  return base_cost_ + cost_per_query_ * static_cast<double>(queries_.size());
}

void QueryBolt::execute(const dsps::Tuple& input, dsps::OutputCollector&) {
  std::int64_t sensor = input.as_int(0);
  double value = input.as_double(1);
  for (std::size_t i = 0; i < queries_.size(); ++i) {
    const RangeQuery& q = queries_[i];
    if (sensor < q.sensor_lo || sensor > q.sensor_hi) continue;
    if (value < q.value_lo || value > q.value_hi) continue;
    Partial& p = partials_[i];
    if (p.count == 0) {
      p.min = p.max = value;
    } else {
      p.min = std::min(p.min, value);
      p.max = std::max(p.max, value);
    }
    ++p.count;
    p.sum += value;
  }
}

void QueryBolt::on_window(sim::SimTime, dsps::OutputCollector& out) {
  for (std::size_t i = 0; i < partials_.size(); ++i) {
    Partial& p = partials_[i];
    if (p.count == 0) continue;
    out.emit({queries_[i].id, p.count, p.sum, p.min, p.max});
    p = Partial{};
  }
}

void QueryResultsBolt::execute(const dsps::Tuple& input, dsps::OutputCollector&) {
  std::int64_t id = input.as_int(0);
  Merged& m = window_[id];
  std::int64_t count = input.as_int(1);
  double sum = input.as_double(2);
  double mn = input.as_double(3);
  double mx = input.as_double(4);
  if (!m.any) {
    m.min = mn;
    m.max = mx;
    m.any = true;
  } else {
    m.min = std::min(m.min, mn);
    m.max = std::max(m.max, mx);
  }
  m.count += count;
  m.sum += sum;
}

void QueryResultsBolt::on_window(sim::SimTime, dsps::OutputCollector&) {
  results_ += static_cast<std::int64_t>(window_.size());
  window_.clear();
}

BuiltApp build_continuous_query(const ContinuousQueryOptions& options) {
  dsps::TopologyBuilder builder("continuous-query");
  builder.set_spout("sensors",
                    [spout = options.spout] { return std::make_unique<SensorSpout>(spout); },
                    options.spout_parallelism);

  std::vector<RangeQuery> queries =
      make_queries(options.n_queries, options.spout.n_sensors, options.seed);
  auto query = builder.set_bolt(
      "query", [queries] { return std::make_unique<QueryBolt>(queries); },
      options.query_parallelism);

  BuiltApp app;
  if (options.use_dynamic_grouping) {
    app.ratio = query.dynamic_grouping("sensors");
  } else {
    query.shuffle_grouping("sensors");
  }

  builder
      .set_bolt("results", [] { return std::make_unique<QueryResultsBolt>(); },
                options.results_parallelism)
      .fields_grouping("query", {0});

  app.topology = builder.build();
  app.spout_name = "sensors";
  app.control_bolt = "query";
  app.sink_name = "results";
  return app;
}

}  // namespace repro::apps
