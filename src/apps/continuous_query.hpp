#pragma once
// Continuous Queries — evaluation application #2.
//
//   sensor-spout --(dynamic|shuffle)--> query --(fields by query)--> results
//
// A set of standing range queries ("avg/min/max of sensors in [a,b] whose
// value is in [lo,hi]") is evaluated against every reading; per-window
// partial aggregates are merged downstream, so — like URL Count — results
// stay correct under arbitrary split ratios.
#include <memory>
#include <string>
#include <vector>
#include <unordered_map>

#include "apps/url_count.hpp"  // BuiltApp
#include "apps/workloads.hpp"
#include "dsps/component.hpp"
#include "dsps/topology.hpp"

namespace repro::apps {

/// A standing query: readings from sensors in [sensor_lo, sensor_hi] with
/// value in [value_lo, value_hi], aggregated per window.
struct RangeQuery {
  std::int64_t id = 0;
  std::int64_t sensor_lo = 0;
  std::int64_t sensor_hi = 0;
  double value_lo = 0.0;
  double value_hi = 100.0;
};

/// Generate q standing queries over the sensor space (deterministic).
std::vector<RangeQuery> make_queries(std::size_t count, std::size_t n_sensors, std::uint64_t seed);

/// Evaluates all queries against each reading and keeps per-query windowed
/// partial aggregates; emits (query_id, count, sum, min, max) per window.
class QueryBolt final : public dsps::Bolt {
 public:
  QueryBolt(std::vector<RangeQuery> queries, double cost_per_query = 3.0e-6,
            double base_cost = 40e-6);

  void execute(const dsps::Tuple& input, dsps::OutputCollector& out) override;
  void on_window(sim::SimTime now, dsps::OutputCollector& out) override;
  double tuple_cost(const dsps::Tuple&) const override;

 private:
  struct Partial {
    std::int64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };
  std::vector<RangeQuery> queries_;
  std::vector<Partial> partials_;
  double cost_per_query_;
  double base_cost_;
};

/// Merges per-window partials into final per-query results.
class QueryResultsBolt final : public dsps::Bolt {
 public:
  explicit QueryResultsBolt(double cost_seconds = 20e-6) : cost_(cost_seconds) {}

  void execute(const dsps::Tuple& input, dsps::OutputCollector& out) override;
  void on_window(sim::SimTime now, dsps::OutputCollector& out) override;
  double tuple_cost(const dsps::Tuple&) const override { return cost_; }

  std::int64_t results_emitted() const { return results_; }

 private:
  struct Merged {
    std::int64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    bool any = false;
  };
  double cost_;
  std::unordered_map<std::int64_t, Merged> window_;
  std::int64_t results_ = 0;
};

struct ContinuousQueryOptions {
  SensorSpout::Options spout{};
  std::size_t n_queries = 48;
  std::size_t spout_parallelism = 1;
  std::size_t query_parallelism = 4;
  std::size_t results_parallelism = 2;
  bool use_dynamic_grouping = true;
  std::uint64_t seed = 11;
};

BuiltApp build_continuous_query(const ContinuousQueryOptions& options);

}  // namespace repro::apps
