#include "apps/workloads.hpp"

#include <algorithm>
#include <cmath>

namespace repro::apps {

double RateProfile::phase_factor_at(double t) const {
  double factor = 1.0;  // in effect before the first phase
  for (const auto& p : phases) {
    if (t < p.at) break;
    if (p.ramp_seconds > 0.0 && t < p.at + p.ramp_seconds) {
      double frac = (t - p.at) / p.ramp_seconds;
      factor += (p.factor - factor) * frac;
    } else {
      factor = p.factor;
    }
  }
  return factor;
}

double RateProfile::rate_at(double t) const {
  double r = base_rate + amplitude * std::sin(2.0 * M_PI * t / period);
  // The empty-phase guard keeps the historical profiles byte-identical
  // (no float multiply by 1.0 on that path).
  if (!phases.empty()) r *= phase_factor_at(t);
  return std::max(r, 1.0);
}

UrlSpout::UrlSpout(Options options)
    : opts_(options), rng_(options.seed, 0xa1), zipf_(options.n_urls, options.zipf_s, options.seed) {}

void UrlSpout::open(std::size_t task_index, std::size_t peer_count) {
  peers_ = std::max<std::size_t>(1, peer_count);
  // De-correlate peer streams (arrival process and URL draw both).
  rng_.reseed(opts_.seed + task_index * 7919, 0xa1);
  zipf_ = common::ZipfSampler(opts_.n_urls, opts_.zipf_s, opts_.seed + task_index * 7919);
}

double UrlSpout::next_delay(sim::SimTime now) {
  double rate = opts_.rate.rate_at(now) / static_cast<double>(peers_);
  // Burst state machine, evaluated at ~1s granularity.
  if (opts_.rate.burst_prob > 0.0 && now - last_burst_check_ >= 1.0) {
    last_burst_check_ = now;
    if (burst_until_ < now && rng_.bernoulli(opts_.rate.burst_prob)) {
      burst_until_ = now + opts_.rate.burst_duration;
    }
  }
  if (now < burst_until_) rate *= opts_.rate.burst_factor;
  return rng_.exponential(rate);
}

std::optional<dsps::Values> UrlSpout::next(sim::SimTime) {
  std::size_t idx = zipf_.sample();
  return dsps::Values{std::string("url-") + std::to_string(idx)};
}

SensorSpout::SensorSpout(Options options) : opts_(options), rng_(options.seed, 0xb2) {
  values_.resize(opts_.n_sensors);
  for (std::size_t i = 0; i < values_.size(); ++i) {
    values_[i] = rng_.uniform(opts_.value_lo, opts_.value_hi);
  }
}

void SensorSpout::open(std::size_t task_index, std::size_t peer_count) {
  peers_ = std::max<std::size_t>(1, peer_count);
  rng_.reseed(opts_.seed + task_index * 104729, 0xb2);
}

double SensorSpout::next_delay(sim::SimTime now) {
  double rate = opts_.rate.rate_at(now) / static_cast<double>(peers_);
  return rng_.exponential(rate);
}

std::optional<dsps::Values> SensorSpout::next(sim::SimTime) {
  std::size_t sensor = rng_.bounded(static_cast<std::uint32_t>(opts_.n_sensors));
  double& v = values_[sensor];
  v += rng_.normal(0.0, opts_.walk_step);
  v = std::clamp(v, opts_.value_lo, opts_.value_hi);
  return dsps::Values{static_cast<std::int64_t>(sensor), v};
}

}  // namespace repro::apps
