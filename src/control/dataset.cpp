#include "control/dataset.hpp"

#include <stdexcept>

namespace repro::control {
namespace {

tensor::Matrix sequence_at(const std::vector<dsps::WindowSample>& history, std::size_t start,
                           std::size_t worker, const DatasetConfig& cfg) {
  std::size_t d = feature_dim(cfg.features);
  tensor::Matrix seq(cfg.seq_len, d);
  for (std::size_t t = 0; t < cfg.seq_len; ++t) {
    std::vector<double> f = worker_features(history[start + t], worker, cfg.features);
    seq.set_row(t, f);
  }
  return seq;
}

}  // namespace

nn::SequenceDataset make_drnn_dataset(const std::vector<dsps::WindowSample>& history,
                                      std::size_t worker, const DatasetConfig& cfg) {
  return make_pooled_drnn_dataset(history, {worker}, cfg);
}

nn::SequenceDataset make_pooled_drnn_dataset(const std::vector<dsps::WindowSample>& history,
                                             const std::vector<std::size_t>& workers,
                                             const DatasetConfig& cfg) {
  nn::SequenceDataset ds;
  if (cfg.seq_len == 0 || cfg.horizon == 0) throw std::invalid_argument("DatasetConfig: zero len");
  if (history.size() < cfg.seq_len + cfg.horizon) return ds;
  std::size_t n = history.size() - cfg.seq_len - cfg.horizon + 1;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t w : workers) {
      tensor::Matrix seq = sequence_at(history, i, w, cfg);
      double target = worker_target(history[i + cfg.seq_len + cfg.horizon - 1], w);
      ds.append(std::move(seq), {target});
    }
  }
  return ds;
}

FlatDataset make_flat_dataset(const std::vector<dsps::WindowSample>& history, std::size_t worker,
                              const DatasetConfig& cfg) {
  return make_pooled_flat_dataset(history, {worker}, cfg);
}

FlatDataset make_pooled_flat_dataset(const std::vector<dsps::WindowSample>& history,
                                     const std::vector<std::size_t>& workers,
                                     const DatasetConfig& cfg) {
  FlatDataset ds;
  if (history.size() < cfg.seq_len + cfg.horizon) return ds;
  std::size_t d = feature_dim(cfg.features);
  std::size_t n = history.size() - cfg.seq_len - cfg.horizon + 1;
  ds.x.resize(n * workers.size(), cfg.seq_len * d);
  ds.y.reserve(n * workers.size());
  std::size_t row = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t w : workers) {
      for (std::size_t t = 0; t < cfg.seq_len; ++t) {
        std::vector<double> f = worker_features(history[i + t], w, cfg.features);
        for (std::size_t c = 0; c < d; ++c) ds.x(row, t * d + c) = f[c];
      }
      ds.y.push_back(worker_target(history[i + cfg.seq_len + cfg.horizon - 1], w));
      ++row;
    }
  }
  return ds;
}

tensor::Matrix latest_sequence(const std::vector<dsps::WindowSample>& history, std::size_t worker,
                               const DatasetConfig& cfg) {
  if (history.size() < cfg.seq_len) {
    throw std::invalid_argument("latest_sequence: history shorter than seq_len");
  }
  return sequence_at(history, history.size() - cfg.seq_len, worker, cfg);
}

void streaming_sequence_into(const StreamingFeatureExtractor& extractor, std::size_t worker,
                             const DatasetConfig& cfg, tensor::Matrix& out) {
  if (extractor.dim() != feature_dim(cfg.features)) {
    throw std::invalid_argument("streaming_sequence_into: extractor feature dim mismatch");
  }
  extractor.sequence_into(worker, cfg.seq_len, out);
}

void latest_sequence_into(const std::vector<dsps::WindowSample>& history, std::size_t worker,
                          const DatasetConfig& cfg, tensor::Matrix& out) {
  if (history.size() < cfg.seq_len) {
    throw std::invalid_argument("latest_sequence: history shorter than seq_len");
  }
  std::size_t d = feature_dim(cfg.features);
  std::size_t start = history.size() - cfg.seq_len;
  out.reshape(cfg.seq_len, d);
  for (std::size_t t = 0; t < cfg.seq_len; ++t) {
    std::vector<double> f = worker_features(history[start + t], worker, cfg.features);
    double* dst = out.row_ptr(t);
    for (std::size_t c = 0; c < d; ++c) dst[c] = f[c];
  }
}

}  // namespace repro::control
