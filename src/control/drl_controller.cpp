#include "control/drl_controller.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/logging.hpp"

namespace repro::control {

void DrlControllerConfig::validate() const {
  if (!(control_interval > 0.0)) {
    throw std::invalid_argument("DrlControllerConfig.control_interval: must be > 0");
  }
  if (hidden == 0) throw std::invalid_argument("DrlControllerConfig.hidden: must be >= 1");
  if (!(gamma >= 0.0) || !(gamma < 1.0)) {
    throw std::invalid_argument("DrlControllerConfig.gamma: must be in [0, 1)");
  }
  if (!(lr > 0.0)) throw std::invalid_argument("DrlControllerConfig.lr: must be > 0");
  if (batch_size == 0) {
    throw std::invalid_argument("DrlControllerConfig.batch_size: must be >= 1");
  }
  if (replay_capacity < batch_size) {
    throw std::invalid_argument("DrlControllerConfig.replay_capacity: " +
                                std::to_string(replay_capacity) + " is below batch_size " +
                                std::to_string(batch_size));
  }
  if (min_replay < batch_size) {
    throw std::invalid_argument("DrlControllerConfig.min_replay: " + std::to_string(min_replay) +
                                " is below batch_size " + std::to_string(batch_size));
  }
  if (target_sync == 0) {
    throw std::invalid_argument("DrlControllerConfig.target_sync: must be >= 1");
  }
  if (!(epsilon_start >= 0.0) || !(epsilon_start <= 1.0)) {
    throw std::invalid_argument("DrlControllerConfig.epsilon_start: must be in [0, 1]");
  }
  if (!(epsilon_end >= 0.0) || !(epsilon_end <= epsilon_start)) {
    throw std::invalid_argument(
        "DrlControllerConfig.epsilon_end: must be in [0, epsilon_start]");
  }
  if (!(epsilon_decay_steps > 0.0)) {
    throw std::invalid_argument("DrlControllerConfig.epsilon_decay_steps: must be > 0");
  }
  if (!(grad_clip > 0.0)) {
    throw std::invalid_argument("DrlControllerConfig.grad_clip: must be > 0");
  }
  if (!(down_weight > 0.0) || !(down_weight < 1.0)) {
    throw std::invalid_argument("DrlControllerConfig.down_weight: must be in (0, 1)");
  }
  if (!(slo_p99 > 0.0)) throw std::invalid_argument("DrlControllerConfig.slo_p99: must be > 0");
  if (!(loss_weight >= 0.0)) {
    throw std::invalid_argument("DrlControllerConfig.loss_weight: must be >= 0");
  }
  if (!(latency_weight >= 0.0)) {
    throw std::invalid_argument("DrlControllerConfig.latency_weight: must be >= 0");
  }
  if (allow_rescale) rescale.validate();
}

DrlController::DrlController(DrlControllerConfig config)
    : Controller(config.control_interval), cfg_(config), rng_(config.seed, 0x7d) {
  cfg_.validate();
}

DrlController::~DrlController() = default;

void DrlController::attach(runtime::ControlSurface& surface, const std::string& from,
                           const std::string& to) {
  pinned_ = {{from, to}};
  Controller::attach(surface);
}

void DrlController::on_attach(runtime::ControlSurface& surface) {
  std::vector<runtime::DynamicEdge> edges = pinned_;
  if (edges.empty()) {
    edges = surface.dynamic_edges();
    if (edges.empty()) {
      throw std::invalid_argument("DrlController::attach: topology has no dynamic-grouping "
                                  "edge to control");
    }
  }
  from_ = edges.front().from;
  to_ = edges.front().to;
  ratio_ = surface.dynamic_ratio(from_, to_);
  auto [lo, hi] = surface.tasks_of(to_);
  task_workers_.clear();
  task_workers_.reserve(hi - lo);
  for (std::size_t t = lo; t < hi; ++t) task_workers_.push_back(surface.worker_of_task(t));

  const FeatureConfig fcfg{};
  const std::size_t dim = feature_dim(fcfg);
  const std::size_t sdim = task_workers_.size() * dim;
  const bool rescale_now = cfg_.allow_rescale && surface.supports_elastic_scaling();
  const std::size_t acts = 2 + task_workers_.size() + (rescale_now ? 2 : 0);
  if (!l1_) {
    state_dim_ = sdim;
    action_count_ = acts;
    rescale_active_ = rescale_now;
    feat_mean_.assign(dim, 0.0);
    feat_m2_.assign(dim, 0.0);
    feat_count_ = 0;
    extractor_ = std::make_unique<StreamingFeatureExtractor>(fcfg, 2);
    if (rescale_active_) rescale_planner_ = std::make_unique<RescalePlanner>(cfg_.rescale);
    build_network();
  } else if (state_dim_ != sdim || action_count_ != acts) {
    // Re-attach keeps the learned policy, so the decision space must match.
    throw std::invalid_argument(
        "DrlController::attach: topology shape changed across attaches (state " +
        std::to_string(state_dim_) + " -> " + std::to_string(sdim) + ", actions " +
        std::to_string(action_count_) + " -> " + std::to_string(acts) + ")");
  }
  extractor_->reset();
  end_episode();
  reset_window_cursor(surface);
}

void DrlController::end_episode() {
  have_prev_ = false;
  pend_acked_ = pend_failed_ = pend_shed_ = pend_roots_ = 0;
  pend_p99_ = 0.0;
}

double DrlController::epsilon() const {
  const double frac =
      std::max(0.0, 1.0 - static_cast<double>(selections_) / cfg_.epsilon_decay_steps);
  return cfg_.epsilon_end + (cfg_.epsilon_start - cfg_.epsilon_end) * frac;
}

std::string DrlController::action_name(std::size_t action) const {
  if (action >= action_count_) {
    throw std::invalid_argument("DrlController::action_name: no action " +
                                std::to_string(action));
  }
  if (action == 0) return "keep";
  if (action == 1) return "uniform";
  const std::size_t routing = 2 + task_workers_.size();
  if (action < routing) return "bypass-" + std::to_string(action - 2);
  return action == routing ? "scale-out" : "scale-in";
}

void DrlController::build_network() {
  // Separate init stream from the exploration stream so adding an
  // exploration draw never reshuffles the weights.
  common::Pcg32 init_rng(cfg_.seed, 0x7e);
  l1_ = std::make_unique<nn::Dense>(state_dim_, cfg_.hidden, nn::Activation::kTanh, init_rng);
  l2_ = std::make_unique<nn::Dense>(cfg_.hidden, action_count_, nn::Activation::kIdentity,
                                    init_rng);
  t1_ = std::make_unique<nn::Dense>(state_dim_, cfg_.hidden, nn::Activation::kTanh, init_rng);
  t2_ = std::make_unique<nn::Dense>(cfg_.hidden, action_count_, nn::Activation::kIdentity,
                                    init_rng);
  sync_target();
  opt_ = std::make_unique<nn::Adam>(cfg_.lr);
  params_.clear();
  for (const auto& p : l1_->param_refs()) params_.push_back(p);
  for (const auto& p : l2_->param_refs()) params_.push_back(p);
  l1_->zero_grads();
  l2_->zero_grads();
}

void DrlController::sync_target() {
  const auto& s1 = l1_->param_refs();
  const auto& d1 = t1_->param_refs();
  for (std::size_t i = 0; i < s1.size(); ++i) d1[i].value->copy_from(*s1[i].value);
  const auto& s2 = l2_->param_refs();
  const auto& d2 = t2_->param_refs();
  for (std::size_t i = 0; i < s2.size(); ++i) d2[i].value->copy_from(*s2[i].value);
}

void DrlController::forward_q(nn::Dense& l1, nn::Dense& l2, const tensor::Matrix& x,
                              tensor::Matrix& q, bool training_pass) {
  l1.forward_matrix_into(x, h_ws_, training_pass);
  l2.forward_matrix_into(h_ws_, q, training_pass);
}

void DrlController::build_state(std::vector<double>& out) {
  const std::size_t dim = feat_mean_.size();
  out.assign(state_dim_, 0.0);
  for (std::size_t j = 0; j < task_workers_.size(); ++j) {
    const std::size_t w = task_workers_[j];
    if (extractor_->rows_of(w) == 0) continue;  // zero-padded until first row
    extractor_->sequence_into(w, 1, row_ws_);
    const double* r = row_ws_.data();
    if (training_) {
      // Welford running standardization; frozen during evaluation so a
      // trained policy is a pure function of the window history.
      ++feat_count_;
      for (std::size_t d = 0; d < dim; ++d) {
        const double delta = r[d] - feat_mean_[d];
        feat_mean_[d] += delta / static_cast<double>(feat_count_);
        feat_m2_[d] += delta * (r[d] - feat_mean_[d]);
      }
    }
    const double n = static_cast<double>(std::max<std::size_t>(feat_count_, 1));
    for (std::size_t d = 0; d < dim; ++d) {
      const double var = feat_m2_[d] / n;
      out[j * dim + d] = (r[d] - feat_mean_[d]) / std::sqrt(var + 1e-6);
    }
  }
}

double DrlController::take_reward() {
  const double roots = static_cast<double>(std::max<std::uint64_t>(pend_roots_, 1));
  const double goodput = static_cast<double>(pend_acked_) / roots;
  const double loss = static_cast<double>(pend_failed_ + pend_shed_) / roots;
  const double slo_excess = std::max(0.0, pend_p99_ / cfg_.slo_p99 - 1.0);
  pend_acked_ = pend_failed_ = pend_shed_ = pend_roots_ = 0;
  pend_p99_ = 0.0;
  return std::clamp(goodput - cfg_.loss_weight * loss - cfg_.latency_weight * slo_excess, -2.0,
                    2.0);
}

std::size_t DrlController::select_action(const std::vector<double>& state, bool* explored) {
  *explored = false;
  if (training_) {
    const double eps = epsilon();
    ++selections_;
    if (rng_.next_double() < eps) {
      *explored = true;
      return rng_.bounded(static_cast<std::uint32_t>(action_count_));
    }
  }
  x1_ws_.reshape(1, state_dim_);
  std::copy(state.begin(), state.end(), x1_ws_.data());
  forward_q(*l1_, *l2_, x1_ws_, q1_ws_, /*training_pass=*/false);
  const double* q = q1_ws_.data();
  std::size_t best = 0;
  for (std::size_t a = 1; a < action_count_; ++a) {
    if (q[a] > q[best]) best = a;
  }
  return best;
}

void DrlController::apply_action(runtime::ControlSurface& surface, std::size_t action) {
  const std::size_t w_count = task_workers_.size();
  if (action == 0) return;  // keep current routing
  if (action == 1) {
    ratios_ws_.assign(w_count, 1.0 / static_cast<double>(w_count));
    ratio_->set_ratios(ratios_ws_);
    return;
  }
  if (action < 2 + w_count) {
    // Bypass: shrink one downstream slot's share, renormalized.
    const std::size_t j = action - 2;
    ratios_ws_.assign(w_count, 1.0);
    ratios_ws_[j] = cfg_.down_weight;
    const double sum = static_cast<double>(w_count - 1) + cfg_.down_weight;
    for (double& r : ratios_ws_) r /= sum;
    ratio_->set_ratios(ratios_ws_);
    return;
  }
  if (!rescale_active_) return;
  const bool scale_out = action == 2 + w_count;
  const std::size_t pool = surface.worker_count();
  std::vector<bool> alive(pool, false);
  std::vector<bool> active(pool, false);
  std::size_t current = 0;
  for (std::size_t w = 0; w < pool; ++w) {
    alive[w] = surface.worker_alive(w);
    active[w] = surface.worker_active(w);
    if (alive[w] && active[w]) ++current;
  }
  const std::size_t target =
      scale_out ? current + 1 : (current > 0 ? current - 1 : current);
  RescalePlan plan =
      rescale_planner_->plan(surface.worker_task_snapshot(), alive, active, target);
  if (plan.empty()) return;
  for (std::size_t w : plan.activate) surface.add_worker(w);
  if (!plan.moves.empty()) surface.migrate_tasks(plan.moves);
  for (std::size_t w : plan.retire) surface.retire_worker(w);
}

void DrlController::train_step() {
  const std::size_t n = replay_.size();
  const std::size_t B = cfg_.batch_size;
  const std::size_t S = state_dim_;
  const std::size_t A = action_count_;

  xb_ws_.reshape(B, S);
  xn_ws_.reshape(B, S);
  std::vector<std::size_t> picked(B);
  for (std::size_t i = 0; i < B; ++i) {
    picked[i] = rng_.bounded(static_cast<std::uint32_t>(n));
    const Transition& tr = replay_[picked[i]];
    std::copy(tr.state.begin(), tr.state.end(), xb_ws_.row_ptr(i));
    std::copy(tr.next_state.begin(), tr.next_state.end(), xn_ws_.row_ptr(i));
  }

  // Bootstrap targets from the frozen target network.
  forward_q(*t1_, *t2_, xn_ws_, qn_ws_, /*training_pass=*/false);
  forward_q(*l1_, *l2_, xb_ws_, qb_ws_, /*training_pass=*/true);

  dq_ws_.reshape(B, A);
  dq_ws_.fill(0.0);
  for (std::size_t i = 0; i < B; ++i) {
    const Transition& tr = replay_[picked[i]];
    const double* qn = qn_ws_.row_ptr(i);
    double best = qn[0];
    for (std::size_t a = 1; a < A; ++a) best = std::max(best, qn[a]);
    const double y = tr.reward + cfg_.gamma * best;
    const double q_sa = qb_ws_(i, tr.action);
    dq_ws_(i, tr.action) = 2.0 * (q_sa - y) / static_cast<double>(B);
  }

  l2_->backward_matrix_into(dq_ws_, dh_ws_);
  l1_->backward_matrix_into(dh_ws_, dx_ws_);
  nn::clip_grad_norm(params_, cfg_.grad_clip);
  opt_->step(params_);
  l1_->zero_grads();
  l2_->zero_grads();

  ++train_steps_;
  if (train_steps_ % cfg_.target_sync == 0) sync_target();
}

void DrlController::round(runtime::ControlSurface& surface) {
  std::size_t seen = 0;
  for_new_windows(surface, [&](const dsps::WindowSample& w) {
    ++seen;
    extractor_->observe(w);
    pend_acked_ += w.topology.acked;
    pend_failed_ += w.topology.failed;
    pend_shed_ += w.topology.dropped_overflow;
    pend_roots_ += w.topology.roots_emitted;
    pend_p99_ = std::max(pend_p99_, w.topology.p99_complete_latency);
  });
  if (seen == 0) return;  // decide only on fresh evidence

  build_state(state_ws_);

  double reward = 0.0;
  if (have_prev_) {
    reward = take_reward();
    if (training_) {
      Transition tr;
      tr.state = prev_state_;
      tr.next_state = state_ws_;
      tr.action = prev_action_;
      tr.reward = reward;
      if (replay_.size() < cfg_.replay_capacity) {
        replay_.push_back(std::move(tr));
      } else {
        replay_[replay_head_] = std::move(tr);
        replay_head_ = (replay_head_ + 1) % cfg_.replay_capacity;
      }
      if (replay_.size() >= cfg_.min_replay) train_step();
    }
  } else {
    take_reward();  // pre-first-decision windows earn no credit
  }

  bool explored = false;
  const std::size_t action = select_action(state_ws_, &explored);
  apply_action(surface, action);
  prev_state_ = state_ws_;
  prev_action_ = action;
  have_prev_ = true;

  DrlAction d;
  d.time = surface.now_seconds();
  d.action = action;
  d.explored = explored;
  d.reward = reward;
  decisions_.push_back(d);
  LOG_DEBUG("drl: action ", action_name(action), (explored ? " (explore)" : " (greedy)"),
            " reward ", reward, " at t=", d.time);
}

}  // namespace repro::control
