#pragma once
// The paper's baseline predictors wrapped behind PerformancePredictor:
// ARIMA (univariate per worker) and SVR (flattened multilevel features),
// plus trivial references (last observation, moving average).
#include <algorithm>
#include <unordered_map>

#include "baselines/arima.hpp"
#include "baselines/holt_winters.hpp"
#include "baselines/svr.hpp"
#include "control/dataset.hpp"
#include "control/predictor.hpp"

namespace repro::control {

/// Per-worker univariate ARIMA over the processing-time series. Refits on
/// the recent tail at every prediction (the fit is a cheap least-squares).
class ArimaPredictor final : public PerformancePredictor {
 public:
  explicit ArimaPredictor(baselines::ArimaConfig config = {}, std::size_t fit_tail = 240,
                          std::size_t horizon = 1);

  void fit(const std::vector<dsps::WindowSample>& history,
           const std::vector<std::size_t>& workers) override;
  double predict_next(const std::vector<dsps::WindowSample>& history, std::size_t worker) override;
  std::size_t min_history() const override;
  std::string name() const override { return "ARIMA"; }
  /// Streaming retention must cover the per-prediction refit tail so the
  /// adapter's rolling window reproduces the batch result exactly.
  std::size_t stream_window() const override { return std::max(fit_tail_, min_history()); }

 private:
  baselines::ArimaConfig cfg_;
  std::size_t fit_tail_;
  std::size_t horizon_;
  double fallback_ = 0.0;
};

/// SVR over the same flattened feature window the DRNN sees.
class SvrPredictor final : public PerformancePredictor {
 public:
  SvrPredictor(baselines::SvrConfig config, DatasetConfig dataset);
  explicit SvrPredictor(DatasetConfig dataset) : SvrPredictor(baselines::SvrConfig{}, dataset) {}

  void fit(const std::vector<dsps::WindowSample>& history,
           const std::vector<std::size_t>& workers) override;
  double predict_next(const std::vector<dsps::WindowSample>& history, std::size_t worker) override;
  std::size_t min_history() const override { return dataset_.seq_len; }
  std::string name() const override { return "SVR"; }

  const baselines::Svr& svr() const { return svr_; }

 private:
  baselines::Svr svr_;
  DatasetConfig dataset_;
  std::size_t max_train_rows_;
};

/// Holt-Winters exponential smoothing over each worker's series: refits on
/// the recent tail at prediction time (the fit is a single smoothing pass).
class HoltWintersPredictor final : public PerformancePredictor {
 public:
  explicit HoltWintersPredictor(baselines::HoltWintersConfig config = {},
                                std::size_t fit_tail = 240, std::size_t horizon = 1);

  void fit(const std::vector<dsps::WindowSample>& history,
           const std::vector<std::size_t>& workers) override;
  double predict_next(const std::vector<dsps::WindowSample>& history, std::size_t worker) override;
  std::size_t min_history() const override;
  std::string name() const override { return "HoltWinters"; }
  std::size_t stream_window() const override { return std::max(fit_tail_, min_history()); }

 private:
  baselines::HoltWintersConfig cfg_;
  std::size_t fit_tail_;
  std::size_t horizon_;
};

/// Memoryless reference: next value = last observed value.
class ObservedPredictor final : public PerformancePredictor {
 public:
  void fit(const std::vector<dsps::WindowSample>&, const std::vector<std::size_t>&) override {}
  double predict_next(const std::vector<dsps::WindowSample>& history, std::size_t worker) override;
  std::size_t min_history() const override { return 1; }
  std::string name() const override { return "Observed"; }
};

/// Moving average of the last `window` observations.
class MovingAverageWindowPredictor final : public PerformancePredictor {
 public:
  explicit MovingAverageWindowPredictor(std::size_t window = 8) : window_(window) {}
  void fit(const std::vector<dsps::WindowSample>&, const std::vector<std::size_t>&) override {}
  double predict_next(const std::vector<dsps::WindowSample>& history, std::size_t worker) override;
  std::size_t min_history() const override { return 1; }
  std::string name() const override { return "MovingAvg"; }

 private:
  std::size_t window_;
};

}  // namespace repro::control
