#pragma once
// Split-ratio planning: turn per-task performance predictions and
// misbehaviour flags into a dynamic-grouping weight vector. Healthy tasks
// receive weight inversely proportional to their predicted processing time
// (faster worker -> more tuples); flagged tasks receive the bypass weight
// (0 redirects all their traffic).
#include <cstddef>
#include <vector>

namespace repro::control {

struct PlannerConfig {
  /// Share kept on a misbehaving task, relative to the mean healthy weight.
  /// A small non-zero trickle keeps the worker *observable*: with a full
  /// bypass it executes nothing, its next-window stats look healthy, the
  /// detector unflags it and traffic flaps back — probing avoids that.
  double bypass_weight = 0.02;
  double smoothing = 0.5;       ///< EWMA on consecutive plans (0 = jump, ->1 = frozen)
  double min_change = 0.02;     ///< L1 distance below which no update is issued
  double power = 1.0;           ///< weight ~ (1/pred)^power
};

class SplitRatioPlanner {
 public:
  explicit SplitRatioPlanner(PlannerConfig config = {});

  /// Compute the next weight vector. Returns empty when the change from
  /// the previous plan is below min_change (caller skips the update).
  std::vector<double> plan(const std::vector<double>& predicted,
                           const std::vector<bool>& misbehaving);

  const std::vector<double>& current() const { return current_; }
  void reset();

  const PlannerConfig& config() const { return cfg_; }

 private:
  PlannerConfig cfg_;
  std::vector<double> current_;
};

}  // namespace repro::control
