#pragma once
// The paper's predictor: a deep recurrent network over multilevel runtime
// statistics sequences, with internal standardization of features and
// target. One shared model is trained across workers (pooled data).
#include <optional>

#include "control/dataset.hpp"
#include "control/predictor.hpp"
#include "nn/scaler.hpp"
#include "nn/serialize.hpp"

namespace repro::control {

struct DrnnPredictorConfig {
  DatasetConfig dataset{};
  std::size_t hidden_size = 32;
  std::size_t num_layers = 2;
  nn::CellKind cell = nn::CellKind::kLstm;
  double dropout = 0.1;
  nn::TrainConfig train{};
  std::uint64_t seed = 7;
};

class DrnnPredictor final : public PerformancePredictor {
 public:
  explicit DrnnPredictor(DrnnPredictorConfig config);

  void fit(const std::vector<dsps::WindowSample>& history,
           const std::vector<std::size_t>& workers) override;
  double predict_next(const std::vector<dsps::WindowSample>& history, std::size_t worker) override;
  std::size_t min_history() const override { return cfg_.dataset.seq_len; }
  std::string name() const override;

  // Fully incremental streaming path: observe() appends one feature row
  // per worker to bounded rings (no raw-sample retention), and
  // predict_next(worker) assembles the live sequence from the rings —
  // bit-identical to the legacy call over the same trailing samples.
  void observe(const dsps::WindowSample& sample) override;
  double predict_next(std::size_t worker) override;
  std::size_t stream_window() const override { return cfg_.dataset.seq_len; }
  std::size_t observed_windows() const override { return stream_fx_.windows_seen(); }
  void reset_stream() override { stream_fx_.reset(); }

  bool trained() const { return model_.has_value(); }
  const nn::TrainReport& last_report() const { return report_; }
  const DrnnPredictorConfig& config() const { return cfg_; }
  nn::Drnn& model();

 private:
  DrnnPredictorConfig cfg_;
  std::optional<nn::Drnn> model_;
  nn::StandardScaler feature_scaler_;
  nn::StandardScaler target_scaler_;
  nn::TrainReport report_;
  tensor::Matrix seq_ws_;  ///< reused live-prediction input buffer
  StreamingFeatureExtractor stream_fx_;
};

}  // namespace repro::control
