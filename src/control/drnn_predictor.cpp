#include "control/drnn_predictor.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/logging.hpp"

namespace repro::control {

DrnnPredictor::DrnnPredictor(DrnnPredictorConfig config)
    : cfg_(std::move(config)),
      stream_fx_(cfg_.dataset.features, std::max<std::size_t>(cfg_.dataset.seq_len, 1)) {}

std::string DrnnPredictor::name() const {
  return cfg_.cell == nn::CellKind::kLstm ? "DRNN-LSTM" : "DRNN-GRU";
}

nn::Drnn& DrnnPredictor::model() {
  if (!model_) throw std::logic_error("DrnnPredictor::model before fit");
  return *model_;
}

void DrnnPredictor::fit(const std::vector<dsps::WindowSample>& history,
                        const std::vector<std::size_t>& workers) {
  nn::SequenceDataset raw = make_pooled_drnn_dataset(history, workers, cfg_.dataset);
  if (raw.size() < 8) throw std::invalid_argument("DrnnPredictor::fit: trace too short");

  // Fit scalers on all timesteps / targets of the training data.
  std::size_t d = feature_dim(cfg_.dataset.features);
  tensor::Matrix all_steps(raw.size() * cfg_.dataset.seq_len, d);
  tensor::Matrix all_targets(raw.size(), 1);
  std::size_t r = 0;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    for (std::size_t t = 0; t < cfg_.dataset.seq_len; ++t) {
      for (std::size_t c = 0; c < d; ++c) all_steps(r, c) = raw.sequences[i](t, c);
      ++r;
    }
    all_targets(i, 0) = raw.targets[i][0];
  }
  feature_scaler_.fit(all_steps);
  target_scaler_.fit(all_targets);

  nn::SequenceDataset scaled;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    tensor::Matrix seq = raw.sequences[i];
    feature_scaler_.transform_inplace(seq);
    scaled.append(std::move(seq), {target_scaler_.transform_scalar(raw.targets[i][0])});
  }

  nn::DrnnConfig mc;
  mc.input_size = d;
  mc.hidden_size = cfg_.hidden_size;
  mc.num_layers = cfg_.num_layers;
  mc.cell = cfg_.cell;
  mc.dropout = cfg_.dropout;
  mc.output_size = 1;
  mc.seed = cfg_.seed;
  model_.emplace(mc);

  nn::Trainer trainer(cfg_.train);
  report_ = trainer.fit(*model_, scaled);
  LOG_INFO("DrnnPredictor trained: ", report_.epochs_run, " epochs, best val loss ",
           report_.best_val_loss);
}

double DrnnPredictor::predict_next(const std::vector<dsps::WindowSample>& history,
                                   std::size_t worker) {
  if (!model_) throw std::logic_error("DrnnPredictor::predict_next before fit");
  latest_sequence_into(history, worker, cfg_.dataset, seq_ws_);
  feature_scaler_.transform_inplace(seq_ws_);
  // Single-sequence fast path: no batch assembly, no steady-state
  // allocations; bit-identical to the batched forward.
  double scaled = model_->predict_single(seq_ws_)(0, 0);
  double value = target_scaler_.inverse_transform_scalar(scaled);
  return value > 0.0 ? value : 0.0;
}

void DrnnPredictor::observe(const dsps::WindowSample& sample) { stream_fx_.observe(sample); }

double DrnnPredictor::predict_next(std::size_t worker) {
  if (!model_) throw std::logic_error("DrnnPredictor::predict_next before fit");
  streaming_sequence_into(stream_fx_, worker, cfg_.dataset, seq_ws_);
  feature_scaler_.transform_inplace(seq_ws_);
  double scaled = model_->predict_single(seq_ws_)(0, 0);
  double value = target_scaler_.inverse_transform_scalar(scaled);
  return value > 0.0 ? value : 0.0;
}

}  // namespace repro::control
