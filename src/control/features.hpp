#pragma once
// Multilevel feature extraction: turns the engine's per-window samples into
// the DRNN input vectors. The distinguishing design point from the paper is
// the *interference block*: statistics of worker processes co-located on
// the same machine, which let the model anticipate slowdowns caused by
// neighbors rather than by the worker's own load.
#include <string>
#include <vector>

#include "dsps/metrics.hpp"
#include "tensor/matrix.hpp"

namespace repro::control {

struct FeatureConfig {
  /// Include co-located-worker statistics (the interference block).
  bool include_colocated = true;
  /// How many co-located workers to encode (sorted by cpu share, padded
  /// with zeros when fewer exist).
  std::size_t max_colocated = 3;
  /// Append the bounded-data-path block (w.bp_stall: seconds the worker's
  /// executors spent stalled on downstream backpressure this window). Off
  /// by default so existing feature vectors and trained models stay
  /// bit-identical; enable on engines running a bounded FlowControl
  /// policy, where queue saturation carries predictive signal.
  bool include_backpressure = false;
};

/// Number of features produced per (window, worker).
std::size_t feature_dim(const FeatureConfig& cfg);

/// Human-readable names, index-aligned with worker_features output.
std::vector<std::string> feature_names(const FeatureConfig& cfg);

/// Feature vector for `worker` in one window sample.
std::vector<double> worker_features(const dsps::WindowSample& sample, std::size_t worker,
                                    const FeatureConfig& cfg);

/// Workspace variant: writes the same vector into out[0, feature_dim(cfg))
/// without allocating — the streaming extractors' per-window hot path.
void worker_features_into(const dsps::WindowSample& sample, std::size_t worker,
                          const FeatureConfig& cfg, double* out);

/// Prediction target: the worker's mean tuple processing time next window.
double worker_target(const dsps::WindowSample& sample, std::size_t worker);

/// Target series for a worker over a span of history.
std::vector<double> target_series(const std::vector<dsps::WindowSample>& history,
                                  std::size_t worker);

/// Rolling per-worker feature windows maintained incrementally: feed each
/// WindowSample once through observe() and the extractor keeps, for every
/// worker it has seen, the most recent `capacity` feature rows and targets
/// in fixed flat rings. Reading the latest length-L sequence is then a
/// bounded copy — a control round costs O(workers x window) no matter how
/// long the run is, and rows are bit-identical to worker_features() on the
/// same samples.
class StreamingFeatureExtractor {
 public:
  /// `capacity` is the per-worker row retention (> 0), typically the
  /// predictor's seq_len or fit tail.
  StreamingFeatureExtractor(FeatureConfig cfg, std::size_t capacity);

  /// Extract and retain features/targets for every worker in the sample.
  void observe(const dsps::WindowSample& sample);

  std::size_t dim() const { return dim_; }
  std::size_t capacity() const { return capacity_; }
  /// Samples fed through observe() so far.
  std::size_t windows_seen() const { return windows_seen_; }
  /// Retained rows for `worker` (0 for workers never seen).
  std::size_t rows_of(std::size_t worker) const;

  /// The worker's latest `len` feature rows, oldest first, into `out`
  /// ([len x dim], reshaped in place). Throws std::invalid_argument when
  /// fewer than `len` rows are retained.
  void sequence_into(std::size_t worker, std::size_t len, tensor::Matrix& out) const;

  /// The worker's latest min(n, rows_of) targets, oldest first, into `out`
  /// (cleared first).
  void targets_tail(std::size_t worker, std::size_t n, std::vector<double>& out) const;

  /// Forget everything (capacity and config stay).
  void reset();

 private:
  struct WorkerRing {
    std::vector<double> rows;     ///< capacity x dim, flat
    std::vector<double> targets;  ///< capacity
    std::size_t head = 0;         ///< next write slot
    std::size_t count = 0;        ///< retained rows, saturates at capacity
  };

  const WorkerRing& ring_of(std::size_t worker) const;

  FeatureConfig cfg_;
  std::size_t dim_;
  std::size_t capacity_;
  std::size_t windows_seen_ = 0;
  std::vector<WorkerRing> rings_;  ///< indexed by worker id, grown lazily
};

}  // namespace repro::control
