#pragma once
// Multilevel feature extraction: turns the engine's per-window samples into
// the DRNN input vectors. The distinguishing design point from the paper is
// the *interference block*: statistics of worker processes co-located on
// the same machine, which let the model anticipate slowdowns caused by
// neighbors rather than by the worker's own load.
#include <string>
#include <vector>

#include "dsps/metrics.hpp"

namespace repro::control {

struct FeatureConfig {
  /// Include co-located-worker statistics (the interference block).
  bool include_colocated = true;
  /// How many co-located workers to encode (sorted by cpu share, padded
  /// with zeros when fewer exist).
  std::size_t max_colocated = 3;
};

/// Number of features produced per (window, worker).
std::size_t feature_dim(const FeatureConfig& cfg);

/// Human-readable names, index-aligned with worker_features output.
std::vector<std::string> feature_names(const FeatureConfig& cfg);

/// Feature vector for `worker` in one window sample.
std::vector<double> worker_features(const dsps::WindowSample& sample, std::size_t worker,
                                    const FeatureConfig& cfg);

/// Prediction target: the worker's mean tuple processing time next window.
double worker_target(const dsps::WindowSample& sample, std::size_t worker);

/// Target series for a worker over a span of history.
std::vector<double> target_series(const std::vector<dsps::WindowSample>& history,
                                  std::size_t worker);

}  // namespace repro::control
