#pragma once
// Controller factory: one fail-closed entry point from a controller name
// (the ScenarioSpec / CLI vocabulary) to a configured control::Controller.
// The scenario harness, the bake-off bench and the CLIs all construct
// their control arm through here so the name set can never drift between
// them. OracleController is deliberately absent: it reads the injected
// fault state directly, which makes it a measurement ceiling, not a
// deployable arm.
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "control/controller.hpp"
#include "control/drl_controller.hpp"
#include "control/rate_controller.hpp"
#include "control/rescale_planner.hpp"

namespace repro::control {

/// Per-kind configuration for make_controller. Leave a block at its
/// defaults unless the experiment overrides it; `predictor` (when set)
/// feeds the predictor-driven kinds, otherwise the factory builds the
/// kind's default predictor from `seed`.
struct ControllerOptions {
  std::uint64_t seed = 7;
  /// Shared predictor for "drnn"/"observed"/"elastic"; null = factory
  /// default ("drnn" and "elastic" get the DRNN, "observed" the observed
  /// baseline).
  std::shared_ptr<PerformancePredictor> predictor;
  ControllerConfig predictive{};       ///< "drnn" / "observed"
  ElasticControllerConfig elastic{};   ///< "elastic"
  DrlControllerConfig drl{};           ///< "drl" (seed overridden by `seed`)
  RateControllerConfig rate{};         ///< "rate"
};

/// Build a controller by name: "drnn" (predictive, DRNN forecasts),
/// "observed" (predictive, last-observation baseline), "elastic"
/// (proactive rescaler), "drl" (model-free DQN), "rate" (AIMD spout
/// throttle). Throws std::invalid_argument listing the valid names on
/// anything else — "none" included: no controller means don't build one.
std::unique_ptr<Controller> make_controller(const std::string& name,
                                            const ControllerOptions& options = {});

/// Every name make_controller accepts, in documentation order — the
/// factory's round-trip surface (tests iterate this).
const std::vector<std::string>& controller_names();

}  // namespace repro::control
