#include "control/rate_controller.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/logging.hpp"

namespace repro::control {

void RateControllerConfig::validate() const {
  if (!(control_interval > 0.0)) {
    throw std::invalid_argument("RateControllerConfig.control_interval: must be > 0");
  }
  if (min_pending == 0) {
    throw std::invalid_argument("RateControllerConfig.min_pending: must be >= 1");
  }
  if (max_pending != 0 && max_pending < min_pending) {
    throw std::invalid_argument("RateControllerConfig.max_pending: " +
                                std::to_string(max_pending) + " is below min_pending " +
                                std::to_string(min_pending));
  }
  if (additive_step == 0) {
    throw std::invalid_argument("RateControllerConfig.additive_step: must be >= 1");
  }
  if (!(decrease_factor > 0.0) || !(decrease_factor < 1.0)) {
    throw std::invalid_argument("RateControllerConfig.decrease_factor: must be in (0, 1)");
  }
  if (!(slo_p99 > 0.0)) {
    throw std::invalid_argument("RateControllerConfig.slo_p99: must be > 0");
  }
  if (!(slo_queue_depth > 0.0)) {
    throw std::invalid_argument("RateControllerConfig.slo_queue_depth: must be > 0");
  }
}

RateController::RateController(RateControllerConfig config)
    : Controller(config.control_interval), cfg_(config) {
  cfg_.validate();
}

void RateController::on_attach(runtime::ControlSurface& surface) {
  if (!surface.supports_spout_throttle()) {
    throw std::invalid_argument("RateController::attach: backend \"" + surface.backend_name() +
                                "\" has no spout throttle to actuate");
  }
  cap_ = surface.max_spout_pending();
  ceiling_ = cfg_.max_pending != 0 ? cfg_.max_pending : cap_;
  floor_ = std::min(cfg_.min_pending, ceiling_);
  reset_window_cursor(surface);
}

void RateController::round(runtime::ControlSurface& surface) {
  bool congested = false;
  std::size_t seen = 0;
  for_new_windows(surface, [&](const dsps::WindowSample& w) {
    ++seen;
    if (w.topology.failed > 0 || w.topology.dropped_overflow > 0) congested = true;
    if (w.topology.p99_complete_latency > cfg_.slo_p99) congested = true;
    for (const auto& t : w.tasks) {
      if (static_cast<double>(t.queue_len) > cfg_.slo_queue_depth) congested = true;
    }
  });
  if (seen == 0) return;  // no new evidence, keep the cap

  std::size_t next = cap_;
  if (congested) {
    next = std::max(floor_, static_cast<std::size_t>(
                                std::floor(static_cast<double>(cap_) * cfg_.decrease_factor)));
  } else {
    next = std::min(ceiling_, cap_ + cfg_.additive_step);
  }
  if (next == cap_) return;

  surface.set_max_spout_pending(next);
  RateAction action;
  action.time = surface.now_seconds();
  action.cap_before = cap_;
  action.cap_after = next;
  action.congested = congested;
  actions_.push_back(action);
  LOG_DEBUG("rate: spout cap ", cap_, " -> ", next, (congested ? " (congested)" : " (probe)"),
            " at t=", action.time);
  cap_ = next;
}

}  // namespace repro::control
