#pragma once
// Misbehaviour detection over predicted per-worker processing times:
// a worker is flagged when its prediction exceeds `threshold` times the
// fleet median for `consecutive` control rounds (hysteresis avoids
// flapping on noise); it is unflagged after `recover_rounds` healthy
// rounds.
#include <cstddef>
#include <vector>

namespace repro::control {

struct DetectorConfig {
  double threshold = 1.6;          ///< multiple of the fleet median
  std::size_t consecutive = 2;     ///< rounds above threshold before flagging
  std::size_t recover_rounds = 5;  ///< healthy rounds before unflagging
  double min_abs = 0.0;            ///< ignore predictions below this (idle noise)
};

class MisbehaviorDetector {
 public:
  explicit MisbehaviorDetector(DetectorConfig config = {});

  /// One detection round. `predicted[i]` is the forecast for entity i
  /// (a worker or a task's worker). Returns the current flags.
  const std::vector<bool>& update(const std::vector<double>& predicted);

  const std::vector<bool>& flags() const { return flagged_; }
  void reset();

  const DetectorConfig& config() const { return cfg_; }

 private:
  DetectorConfig cfg_;
  std::vector<std::size_t> above_count_;
  std::vector<std::size_t> healthy_count_;
  std::vector<bool> flagged_;
};

/// Median helper (exposed for tests).
double median_of(std::vector<double> values);

}  // namespace repro::control
