#include "control/multi_horizon.hpp"

#include <stdexcept>

namespace repro::control {

MultiHorizonDrnn::MultiHorizonDrnn(MultiHorizonConfig config) : cfg_(std::move(config)) {
  if (cfg_.horizons == 0) throw std::invalid_argument("MultiHorizonDrnn: horizons must be > 0");
}

nn::SequenceDataset MultiHorizonDrnn::make_dataset(const std::vector<dsps::WindowSample>& history,
                                                   const std::vector<std::size_t>& workers,
                                                   const MultiHorizonConfig& cfg) {
  nn::SequenceDataset ds;
  if (history.size() < cfg.seq_len + cfg.horizons) return ds;
  std::size_t d = feature_dim(cfg.features);
  std::size_t n = history.size() - cfg.seq_len - cfg.horizons + 1;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t w : workers) {
      tensor::Matrix seq(cfg.seq_len, d);
      for (std::size_t t = 0; t < cfg.seq_len; ++t) {
        seq.set_row(t, worker_features(history[i + t], w, cfg.features));
      }
      std::vector<double> target(cfg.horizons);
      for (std::size_t h = 0; h < cfg.horizons; ++h) {
        target[h] = worker_target(history[i + cfg.seq_len + h], w);
      }
      ds.append(std::move(seq), std::move(target));
    }
  }
  return ds;
}

void MultiHorizonDrnn::fit(const std::vector<dsps::WindowSample>& history,
                           const std::vector<std::size_t>& workers) {
  nn::SequenceDataset raw = make_dataset(history, workers, cfg_);
  if (raw.size() < 8) throw std::invalid_argument("MultiHorizonDrnn::fit: trace too short");

  std::size_t d = feature_dim(cfg_.features);
  tensor::Matrix all_steps(raw.size() * cfg_.seq_len, d);
  tensor::Matrix all_targets(raw.size(), cfg_.horizons);
  std::size_t r = 0;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    for (std::size_t t = 0; t < cfg_.seq_len; ++t) {
      for (std::size_t c = 0; c < d; ++c) all_steps(r, c) = raw.sequences[i](t, c);
      ++r;
    }
    for (std::size_t h = 0; h < cfg_.horizons; ++h) all_targets(i, h) = raw.targets[i][h];
  }
  feature_scaler_.fit(all_steps);
  target_scaler_.fit(all_targets);

  nn::SequenceDataset scaled;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    tensor::Matrix seq = raw.sequences[i];
    feature_scaler_.transform_inplace(seq);
    std::vector<double> target(cfg_.horizons);
    for (std::size_t h = 0; h < cfg_.horizons; ++h) {
      target[h] = target_scaler_.transform_scalar(raw.targets[i][h], h);
    }
    scaled.append(std::move(seq), std::move(target));
  }

  nn::DrnnConfig mc;
  mc.input_size = d;
  mc.hidden_size = cfg_.hidden_size;
  mc.num_layers = cfg_.num_layers;
  mc.cell = cfg_.cell;
  mc.dropout = cfg_.dropout;
  mc.output_size = cfg_.horizons;
  mc.seed = cfg_.seed;
  model_.emplace(mc);

  nn::Trainer trainer(cfg_.train);
  report_ = trainer.fit(*model_, scaled);
}

std::vector<double> MultiHorizonDrnn::forecast(const std::vector<dsps::WindowSample>& history,
                                               std::size_t worker) {
  if (!model_) throw std::logic_error("MultiHorizonDrnn::forecast before fit");
  if (history.size() < cfg_.seq_len) {
    throw std::invalid_argument("MultiHorizonDrnn::forecast: history too short");
  }
  std::size_t d = feature_dim(cfg_.features);
  tensor::Matrix seq(cfg_.seq_len, d);
  std::size_t start = history.size() - cfg_.seq_len;
  for (std::size_t t = 0; t < cfg_.seq_len; ++t) {
    seq.set_row(t, worker_features(history[start + t], worker, cfg_.features));
  }
  feature_scaler_.transform_inplace(seq);
  std::vector<double> scaled = model_->predict(seq);
  std::vector<double> out(cfg_.horizons);
  for (std::size_t h = 0; h < cfg_.horizons; ++h) {
    double v = target_scaler_.inverse_transform_scalar(scaled[h], h);
    out[h] = v > 0.0 ? v : 0.0;
  }
  return out;
}

}  // namespace repro::control
