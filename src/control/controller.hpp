#pragma once
// The predictive control loop (the paper's headline system): every control
// interval, forecast each downstream task's worker performance with the
// attached predictor, flag misbehaving workers, plan new split ratios, and
// actuate them through the dynamic grouping — re-directing tuples to
// bypass misbehaving workers *before* queues build up.
//
// A controller attaches to a whole topology: it discovers every
// dynamic-grouping edge from the runtime's control surface and keeps
// per-edge detector/planner state, while one shared predictor streams the
// window history incrementally (each window is observed exactly once, so
// a control round costs O(edges x workers x window) independent of run
// length). The single-edge attach(surface, from, to) form is a thin
// wrapper that pins the controller to one connection.
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "control/detector.hpp"
#include "control/planner.hpp"
#include "control/predictor.hpp"
#include "runtime/control_surface.hpp"

namespace repro::control {

struct ControllerConfig {
  double control_interval = 2.0;  ///< seconds between control rounds
  DetectorConfig detector{};
  PlannerConfig planner{};
  /// Periodically refit the predictor on the recent history tail while
  /// attached (seconds between refits; 0 disables — the experiment
  /// default, where models are pretrained on a profiling trace).
  double refit_interval = 0.0;
  /// How many most-recent windows a budgeted refit trains on.
  std::size_t refit_window = 512;
};

/// One control action, kept for experiment introspection.
struct ControlAction {
  double time = 0.0;
  std::string from;               ///< controlled edge (upstream component)
  std::string to;                 ///< controlled edge (downstream bolt)
  std::vector<double> predicted;  ///< per downstream task
  std::vector<bool> misbehaving;
  std::vector<double> ratios;     ///< empty when no update was issued
  /// Wall-clock cost of the control round that produced this action
  /// (shared by all edges of the round).
  double round_seconds = 0.0;
};

class PredictiveController {
 public:
  PredictiveController(ControllerConfig config, std::shared_ptr<PerformancePredictor> predictor);

  /// Wire the controller into a runtime (simulated or real-threads): it
  /// discovers every dynamic-grouping connection of the topology, takes
  /// over each edge's DynamicRatio, and registers the periodic control
  /// hook. Throws std::invalid_argument when the topology has no dynamic
  /// edge. The predictor must already be fitted (pretrain on a profiling
  /// trace) unless ControllerConfig::refit_interval schedules fits.
  void attach(runtime::ControlSurface& surface);

  /// Single-edge form: control only the (from -> to) connection.
  void attach(runtime::ControlSurface& surface, const std::string& from, const std::string& to);

  /// Run one control round manually (attach() registers this periodically).
  void control_round(runtime::ControlSurface& surface);

  const std::vector<ControlAction>& actions() const { return actions_; }
  PerformancePredictor& predictor() { return *predictor_; }
  const ControllerConfig& config() const { return cfg_; }
  /// Dynamic edges currently under control (set by attach).
  std::size_t edge_count() const { return edges_.size(); }
  /// Budgeted refits performed since attach.
  std::size_t refits() const { return refits_; }

 private:
  /// Per-edge control state: detector hysteresis and planner smoothing are
  /// independent across edges; the predictor is shared.
  struct Edge {
    std::string from;
    std::string to;
    std::shared_ptr<dsps::DynamicRatio> ratio;
    MisbehaviorDetector detector;
    SplitRatioPlanner planner;
    std::vector<std::size_t> task_workers;  ///< worker of each downstream task
  };

  void attach_edges(runtime::ControlSurface& surface,
                    const std::vector<runtime::DynamicEdge>& edges);
  void maybe_refit(runtime::ControlSurface& surface);

  ControllerConfig cfg_;
  std::shared_ptr<PerformancePredictor> predictor_;
  std::vector<Edge> edges_;
  std::vector<ControlAction> actions_;
  std::size_t next_window_ = 0;  ///< first global window index not yet observed
  double last_refit_time_ = 0.0;
  std::size_t refits_ = 0;
  std::vector<dsps::WindowSample> refit_buf_;  ///< reused refit tail copy
};

/// Fault-oracle controller for the T3 upper bound: reads the injected
/// worker slowdowns directly instead of predicting them (requires a
/// backend with fault injection).
class OracleController {
 public:
  explicit OracleController(PlannerConfig planner = {});
  void attach(runtime::ControlSurface& surface, const std::string& from, const std::string& to,
              double interval = 1.0);

 private:
  void control_round(runtime::ControlSurface& surface);

  SplitRatioPlanner planner_;
  std::shared_ptr<dsps::DynamicRatio> ratio_;
  std::vector<std::size_t> task_workers_;
};

}  // namespace repro::control
