#pragma once
// The control plane's common spine plus the predictive control loop (the
// paper's headline system): every control interval, forecast each
// downstream task's worker performance with the attached predictor, flag
// misbehaving workers, plan new split ratios, and actuate them through
// the dynamic grouping — re-directing tuples to bypass misbehaving
// workers *before* queues build up.
//
// Every control arm (predictive, elastic, DRL, rate, oracle) derives from
// control::Controller, which owns the boilerplate the arms used to
// copy-paste: periodic-round registration on the ControlSurface, the
// window-history ingest cursor (each window observed exactly once, so a
// control round costs O(edges x workers x window) independent of run
// length), per-round wall-clock stamping, and totals reporting for the
// experiment harness.
//
// A predictive controller attaches to a whole topology: it discovers
// every dynamic-grouping edge from the runtime's control surface and
// keeps per-edge detector/planner state, while one shared predictor
// streams the window history incrementally. The single-edge
// attach(surface, from, to) form is a thin wrapper that pins the
// controller to one connection.
#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "control/detector.hpp"
#include "control/planner.hpp"
#include "control/predictor.hpp"
#include "runtime/control_surface.hpp"

namespace repro::control {

/// Backend-agnostic run totals every controller reports — the experiment
/// harness fills its result rows from this instead of branching on the
/// concrete controller type. Wall-clock fields are excluded from golden
/// tables by the renderers.
struct ControllerTotals {
  std::size_t control_rounds = 0;  ///< kind-specific round count (see each arm)
  double mean_round_ms = 0.0;      ///< wall clock per reported round
  std::size_t rescales = 0;        ///< elastic arm: applied rescale actions
  double worker_seconds = 0.0;     ///< elastic arm: active-worker integral
};

/// Abstract base of every control arm. attach() wires the controller
/// into a runtime: the subclass hook on_attach() validates backend
/// support and captures actuator handles, then the base registers the
/// periodic control hook so the surface fires round() every
/// control_interval() seconds. control_round() (also callable manually)
/// wall-clock-times each round, accumulates totals, and hands the cost to
/// stamp_round() so arms can tag their per-round action records.
class Controller {
 public:
  virtual ~Controller() = default;

  /// Wire into a runtime (simulated or real-threads) and register the
  /// periodic control hook. Throws std::invalid_argument when the backend
  /// lacks what the arm needs (no dynamic edge, no elastic scaling, no
  /// spout throttle, ...) — fail closed at attach, not mid-run.
  void attach(runtime::ControlSurface& surface);

  /// Run one control round manually (attach() registers this periodically).
  void control_round(runtime::ControlSurface& surface);

  /// Stable arm identifier ("predictive", "elastic", "drl", "rate", ...).
  virtual std::string name() const = 0;

  /// Control rounds executed since attach (including warmup rounds that
  /// decided nothing).
  std::size_t rounds() const { return rounds_; }
  /// Wall-clock seconds spent inside round() in total / per round.
  double total_round_seconds() const { return total_round_seconds_; }
  double mean_round_ms() const {
    return rounds_ == 0 ? 0.0 : 1e3 * total_round_seconds_ / static_cast<double>(rounds_);
  }

  /// Run totals for the experiment harness. The base reports executed
  /// rounds; arms override to report their historical counting unit (the
  /// predictive arm counts per-edge actions, the elastic arm applied
  /// rescales) so existing tables stay byte-identical.
  virtual ControllerTotals totals() const;

  double control_interval() const { return interval_; }

 protected:
  explicit Controller(double control_interval);

  /// For arms whose interval is an attach-time parameter (OracleController).
  void set_control_interval(double interval);

  /// Validate backend support and capture per-run state. Runs before the
  /// hook registration; throw to refuse the attach.
  virtual void on_attach(runtime::ControlSurface& surface) = 0;

  /// One control round: observe -> decide -> actuate. The base times it.
  virtual void round(runtime::ControlSurface& surface) = 0;

  /// Post-round latency stamp: `seconds` is the wall-clock cost of the
  /// round that just finished (the predictive arm stamps it onto the
  /// round's ControlActions). Default: no-op.
  virtual void stamp_round(double /*seconds*/) {}

  /// Restart the ingest cursor at the oldest retained window — call from
  /// on_attach so a re-attached controller streams the new run's history
  /// from its beginning.
  void reset_window_cursor(const runtime::ControlSurface& surface) {
    next_window_ = surface.window_history().first_index();
  }

  /// Invoke `fn` on every window the controller has not seen yet, oldest
  /// first, each exactly once (a bounded spine may have evicted very old
  /// unseen windows; those are skipped). Advances the cursor.
  template <typename Fn>
  void for_new_windows(const runtime::ControlSurface& surface, Fn&& fn) {
    const runtime::WindowHistory& wh = surface.window_history();
    for (std::size_t i = std::max(next_window_, wh.first_index()); i < wh.total(); ++i) {
      fn(wh.at_global(i));
    }
    next_window_ = wh.total();
  }

  /// The common "stream unseen windows into the shared predictor" round
  /// prologue; a null predictor still advances the cursor.
  void observe_new_windows(const runtime::ControlSurface& surface,
                           PerformancePredictor* predictor) {
    for_new_windows(surface, [predictor](const dsps::WindowSample& sample) {
      if (predictor != nullptr) predictor->observe(sample);
    });
  }

 private:
  double interval_;
  std::size_t next_window_ = 0;  ///< first global window index not yet observed
  std::size_t rounds_ = 0;
  double total_round_seconds_ = 0.0;
};

struct ControllerConfig {
  double control_interval = 2.0;  ///< seconds between control rounds
  DetectorConfig detector{};
  PlannerConfig planner{};
  /// Periodically refit the predictor on the recent history tail while
  /// attached (seconds between refits; 0 disables — the experiment
  /// default, where models are pretrained on a profiling trace).
  double refit_interval = 0.0;
  /// How many most-recent windows a budgeted refit trains on.
  std::size_t refit_window = 512;
};

/// One control action, kept for experiment introspection.
struct ControlAction {
  double time = 0.0;
  std::string from;               ///< controlled edge (upstream component)
  std::string to;                 ///< controlled edge (downstream bolt)
  std::vector<double> predicted;  ///< per downstream task
  std::vector<bool> misbehaving;
  std::vector<double> ratios;     ///< empty when no update was issued
  /// Wall-clock cost of the control round that produced this action
  /// (shared by all edges of the round).
  double round_seconds = 0.0;
};

class PredictiveController : public Controller {
 public:
  PredictiveController(ControllerConfig config, std::shared_ptr<PerformancePredictor> predictor);

  /// Topology attach: discovers every dynamic-grouping connection and
  /// takes over each edge's DynamicRatio. Throws std::invalid_argument
  /// when the topology has no dynamic edge. The predictor must already be
  /// fitted (pretrain on a profiling trace) unless
  /// ControllerConfig::refit_interval schedules fits.
  using Controller::attach;

  /// Single-edge form: control only the (from -> to) connection.
  void attach(runtime::ControlSurface& surface, const std::string& from, const std::string& to);

  const std::vector<ControlAction>& actions() const { return actions_; }
  PerformancePredictor& predictor() { return *predictor_; }
  const ControllerConfig& config() const { return cfg_; }
  /// Dynamic edges currently under control (set by attach).
  std::size_t edge_count() const { return edges_.size(); }
  /// Budgeted refits performed since attach.
  std::size_t refits() const { return refits_; }

  std::string name() const override { return "predictive"; }
  /// Historical counting unit: one ControlAction per controlled edge per
  /// effective round (warmup rounds record nothing).
  ControllerTotals totals() const override;

 protected:
  void on_attach(runtime::ControlSurface& surface) override;
  void round(runtime::ControlSurface& surface) override;
  void stamp_round(double seconds) override;

 private:
  /// Per-edge control state: detector hysteresis and planner smoothing are
  /// independent across edges; the predictor is shared.
  struct Edge {
    std::string from;
    std::string to;
    std::shared_ptr<dsps::DynamicRatio> ratio;
    MisbehaviorDetector detector;
    SplitRatioPlanner planner;
    std::vector<std::size_t> task_workers;  ///< worker of each downstream task
  };

  void maybe_refit(runtime::ControlSurface& surface);

  ControllerConfig cfg_;
  std::shared_ptr<PerformancePredictor> predictor_;
  std::vector<runtime::DynamicEdge> pinned_;  ///< single-edge attach form
  std::vector<Edge> edges_;
  std::vector<ControlAction> actions_;
  std::size_t first_action_ = 0;  ///< actions appended by the round in flight
  double last_refit_time_ = 0.0;
  std::size_t refits_ = 0;
  std::vector<dsps::WindowSample> refit_buf_;  ///< reused refit tail copy
};

/// Fault-oracle controller for the T3 upper bound: reads the injected
/// worker slowdowns directly instead of predicting them (requires a
/// backend with fault injection). Deliberately absent from
/// make_controller — it cheats, so it is not a deployable arm.
class OracleController : public Controller {
 public:
  explicit OracleController(PlannerConfig planner = {});
  void attach(runtime::ControlSurface& surface, const std::string& from, const std::string& to,
              double interval = 1.0);

  std::string name() const override { return "oracle"; }

 protected:
  void on_attach(runtime::ControlSurface& surface) override;
  void round(runtime::ControlSurface& surface) override;

 private:
  SplitRatioPlanner planner_;
  std::string from_;
  std::string to_;
  std::shared_ptr<dsps::DynamicRatio> ratio_;
  std::vector<std::size_t> task_workers_;
};

}  // namespace repro::control
