#pragma once
// The predictive control loop (the paper's headline system): every control
// interval, forecast each downstream task's worker performance with the
// attached predictor, flag misbehaving workers, plan new split ratios, and
// actuate them through the dynamic grouping — re-directing tuples to
// bypass misbehaving workers *before* queues build up.
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "control/detector.hpp"
#include "control/planner.hpp"
#include "control/predictor.hpp"
#include "runtime/control_surface.hpp"

namespace repro::control {

struct ControllerConfig {
  double control_interval = 2.0;  ///< seconds between control rounds
  DetectorConfig detector{};
  PlannerConfig planner{};
};

/// One control action, kept for experiment introspection.
struct ControlAction {
  double time = 0.0;
  std::vector<double> predicted;  ///< per downstream task
  std::vector<bool> misbehaving;
  std::vector<double> ratios;     ///< empty when no update was issued
};

class PredictiveController {
 public:
  PredictiveController(ControllerConfig config, std::shared_ptr<PerformancePredictor> predictor);

  /// Wire the controller into a runtime (simulated or real-threads): it
  /// takes over the DynamicRatio of the (from -> to) connection and
  /// registers the periodic control hook. The predictor must already be
  /// fitted (pretrain on a profiling trace).
  void attach(runtime::ControlSurface& surface, const std::string& from, const std::string& to);

  /// Run one control round manually (attach() registers this periodically).
  void control_round(runtime::ControlSurface& surface);

  const std::vector<ControlAction>& actions() const { return actions_; }
  PerformancePredictor& predictor() { return *predictor_; }
  const ControllerConfig& config() const { return cfg_; }

 private:
  ControllerConfig cfg_;
  std::shared_ptr<PerformancePredictor> predictor_;
  MisbehaviorDetector detector_;
  SplitRatioPlanner planner_;
  std::shared_ptr<dsps::DynamicRatio> ratio_;
  std::vector<std::size_t> task_workers_;  ///< worker of each downstream task
  std::vector<ControlAction> actions_;
};

/// Fault-oracle controller for the T3 upper bound: reads the injected
/// worker slowdowns directly instead of predicting them (requires a
/// backend with fault injection).
class OracleController {
 public:
  explicit OracleController(PlannerConfig planner = {});
  void attach(runtime::ControlSurface& surface, const std::string& from, const std::string& to,
              double interval = 1.0);

 private:
  void control_round(runtime::ControlSurface& surface);

  SplitRatioPlanner planner_;
  std::shared_ptr<dsps::DynamicRatio> ratio_;
  std::vector<std::size_t> task_workers_;
};

}  // namespace repro::control
