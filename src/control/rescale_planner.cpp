#include "control/rescale_planner.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/logging.hpp"

namespace repro::control {

void RescaleConfig::validate() const {
  if (min_workers == 0) {
    throw std::invalid_argument("RescaleConfig.min_workers: must be >= 1");
  }
  if (max_workers != 0 && max_workers < min_workers) {
    throw std::invalid_argument("RescaleConfig.max_workers: " + std::to_string(max_workers) +
                                " is below min_workers " + std::to_string(min_workers));
  }
  if (slo_queue_depth <= 0.0) {
    throw std::invalid_argument("RescaleConfig.slo_queue_depth: must be > 0");
  }
  if (slo_p99_latency <= 0.0) {
    throw std::invalid_argument("RescaleConfig.slo_p99_latency: must be > 0");
  }
  if (headroom <= 0.0 || headroom > 1.0) {
    throw std::invalid_argument("RescaleConfig.headroom: must be in (0, 1]");
  }
  if (cooldown < 0.0) throw std::invalid_argument("RescaleConfig.cooldown: must be >= 0");
  if (lead_time < 0.0) throw std::invalid_argument("RescaleConfig.lead_time: must be >= 0");
  if (trend_windows < 2) {
    throw std::invalid_argument("RescaleConfig.trend_windows: must be >= 2");
  }
}

RescalePlanner::RescalePlanner(RescaleConfig config) : cfg_(config) { cfg_.validate(); }

RescalePlan RescalePlanner::plan(const std::vector<std::vector<std::size_t>>& worker_tasks,
                                 const std::vector<bool>& alive, const std::vector<bool>& active,
                                 std::size_t target_active) const {
  const std::size_t pool = alive.size();
  std::size_t alive_count = 0;
  std::size_t current = 0;
  for (std::size_t w = 0; w < pool; ++w) {
    if (alive[w]) ++alive_count;
    if (alive[w] && active[w]) ++current;
  }
  std::size_t max_active = cfg_.max_workers == 0 ? pool : std::min(cfg_.max_workers, pool);
  max_active = std::min(max_active, alive_count);
  std::size_t min_active = std::min(cfg_.min_workers, max_active);
  RescalePlan out;
  out.target_active = std::clamp(target_active, min_active, max_active);

  if (out.target_active > current) {
    // Scale out: activate the lowest-id retired alive workers first, then
    // rebalance executors onto them (a fresh activation hosts nothing, so
    // without moves the capacity would be idle).
    std::vector<std::vector<std::size_t>> tasks = worker_tasks;
    std::vector<bool> hosts = active;
    std::size_t n = current;
    for (std::size_t w = 0; w < pool && n < out.target_active; ++w) {
      if (alive[w] && !hosts[w]) {
        out.activate.push_back(w);
        hosts[w] = true;
        ++n;
      }
    }
    // Greedy spread: move the highest task id off the most-loaded active
    // worker (tie: lowest id) onto the least-loaded one (tie: lowest id)
    // until the load spread is <= 1. Deterministic and minimal — a
    // balanced pool plans no moves.
    for (;;) {
      std::size_t max_w = pool, min_w = pool;
      for (std::size_t w = 0; w < pool; ++w) {
        if (!alive[w] || !hosts[w]) continue;
        if (max_w == pool || tasks[w].size() > tasks[max_w].size()) max_w = w;
        if (min_w == pool || tasks[w].size() < tasks[min_w].size()) min_w = w;
      }
      if (max_w == pool || tasks[max_w].size() <= tasks[min_w].size() + 1) break;
      std::size_t task = tasks[max_w].back();
      tasks[max_w].pop_back();
      tasks[min_w].push_back(task);
      out.moves.push_back({task, max_w, min_w});
    }
  } else if (out.target_active < current) {
    // Scale in: retire the highest-id active workers (LIFO order, so an
    // out-then-in excursion returns to the original placement). The
    // drains themselves run inside the engine's retire hook.
    std::size_t n = current;
    for (std::size_t w = pool; w-- > 0 && n > out.target_active;) {
      if (alive[w] && active[w]) {
        out.retire.push_back(w);
        --n;
      }
    }
  }
  return out;
}

std::vector<dsps::TaskMove> plan_retire_moves(
    const std::vector<std::vector<std::size_t>>& worker_tasks, const std::vector<bool>& alive,
    const std::vector<bool>& active, std::size_t worker) {
  std::vector<bool> hosts(alive.size(), false);
  for (std::size_t w = 0; w < alive.size(); ++w) hosts[w] = alive[w] && active[w] && w != worker;
  return dsps::plan_crash_reassignment(worker_tasks, worker, hosts);
}

void validate_rescale_plan(const RescalePlan& plan,
                           const std::vector<std::vector<std::size_t>>& worker_tasks,
                           const std::vector<bool>& alive, const std::vector<bool>& active) {
  const std::size_t pool = alive.size();
  std::size_t task_count = 0;
  for (const auto& tasks : worker_tasks) task_count += tasks.size();
  std::vector<bool> hosts = active;  // post-activation active set
  for (std::size_t i = 0; i < plan.activate.size(); ++i) {
    const std::string field = "RescalePlan.activate[" + std::to_string(i) + "]";
    std::size_t w = plan.activate[i];
    if (w >= pool) throw std::invalid_argument(field + ": no worker " + std::to_string(w));
    if (!alive[w]) {
      throw std::invalid_argument(field + ": worker " + std::to_string(w) + " is dead");
    }
    hosts[w] = true;
  }
  for (std::size_t i = 0; i < plan.retire.size(); ++i) {
    const std::string field = "RescalePlan.retire[" + std::to_string(i) + "]";
    std::size_t w = plan.retire[i];
    if (w >= pool) throw std::invalid_argument(field + ": no worker " + std::to_string(w));
    if (!hosts[w]) {
      throw std::invalid_argument(field + ": worker " + std::to_string(w) + " is not active");
    }
    hosts[w] = false;
  }
  for (std::size_t i = 0; i < plan.moves.size(); ++i) {
    const std::string field = "RescalePlan.moves[" + std::to_string(i) + "]";
    const dsps::TaskMove& m = plan.moves[i];
    if (m.task >= task_count) {
      throw std::invalid_argument(field + ".task: no task " + std::to_string(m.task));
    }
    if (m.to_worker >= pool) {
      throw std::invalid_argument(field + ".to_worker: no worker " +
                                  std::to_string(m.to_worker));
    }
    if (!alive[m.to_worker]) {
      throw std::invalid_argument(field + ".to_worker: worker " + std::to_string(m.to_worker) +
                                  " is dead");
    }
    if (!hosts[m.to_worker]) {
      throw std::invalid_argument(field + ".to_worker: worker " + std::to_string(m.to_worker) +
                                  " is retired");
    }
  }
}

ElasticController::ElasticController(ElasticControllerConfig config,
                                     std::shared_ptr<PerformancePredictor> predictor)
    : Controller(config.control_interval),
      cfg_(config),
      planner_(config.rescale),
      predictor_(std::move(predictor)) {}

void ElasticController::on_attach(runtime::ControlSurface& surface) {
  if (!surface.supports_elastic_scaling()) {
    throw std::invalid_argument("ElasticController::attach: backend \"" +
                                surface.backend_name() + "\" has no elastic scaling");
  }
  if (predictor_) predictor_->reset_stream();
  reset_window_cursor(surface);
  ws_last_time_ = surface.now_seconds();
  below_rounds_ = 0;
}

ControllerTotals ElasticController::totals() const {
  ControllerTotals t;
  t.control_rounds = rescales();
  t.mean_round_ms = mean_round_ms();
  t.rescales = rescales();
  t.worker_seconds = worker_seconds_;
  return t;
}

void ElasticController::round(runtime::ControlSurface& surface) {
  const runtime::WindowHistory& wh = surface.window_history();
  observe_new_windows(surface, predictor_.get());

  const double now = surface.now_seconds();
  const std::size_t pool = surface.worker_count();
  std::vector<bool> alive(pool, false);
  std::vector<bool> active(pool, false);
  std::size_t current = 0;
  for (std::size_t w = 0; w < pool; ++w) {
    alive[w] = surface.worker_alive(w);
    active[w] = surface.worker_active(w);
    if (alive[w] && active[w]) ++current;
  }
  // attach() runs before the rt engines start their clock, so the seeded
  // ws_last_time_ can postdate `now` there; the first in-run round becomes
  // the integral origin instead of contributing a bogus interval.
  if (now > ws_last_time_) {
    worker_seconds_ += static_cast<double>(current) * (now - ws_last_time_);
  }
  ws_last_time_ = now;

  if (wh.total() == wh.first_index()) return;  // no samples yet

  double predicted_rate = 0.0;
  double predicted_proc = 0.0;
  std::size_t target = decide_target(surface, current, &predicted_rate, &predicted_proc);
  if (target == current) return;
  if (changed_once_ && now - last_change_time_ < cfg_.rescale.cooldown) return;

  RescalePlan plan = planner_.plan(surface.worker_task_snapshot(), alive, active, target);
  if (plan.empty()) return;
  // Apply in capacity-safe order: grow the pool, rebalance onto it, then
  // drain the retirees (their executors land on the survivors).
  for (std::size_t w : plan.activate) surface.add_worker(w);
  if (!plan.moves.empty()) surface.migrate_tasks(plan.moves);
  for (std::size_t w : plan.retire) surface.retire_worker(w);
  last_change_time_ = now;
  changed_once_ = true;

  RescaleAction action;
  action.time = now;
  action.active_before = current;
  action.target = plan.target_active;
  action.activated = plan.activate;
  action.retired = plan.retire;
  action.migrations = plan.moves.size();
  action.predicted_rate = predicted_rate;
  action.predicted_proc = predicted_proc;
  actions_.push_back(std::move(action));
  LOG_DEBUG("elastic: ", current, " -> ", plan.target_active, " active workers at t=", now);
}

std::size_t ElasticController::decide_target(const runtime::ControlSurface& surface,
                                             std::size_t current, double* predicted_rate,
                                             double* predicted_proc) {
  const runtime::WindowHistory& wh = surface.window_history();
  const dsps::WindowSample& last = wh.at_global(wh.total() - 1);

  if (cfg_.reactive) {
    // Threshold baseline: react to the observed max queue depth — after
    // the SLO is already under pressure.
    std::size_t max_queue = 0;
    for (const auto& w : last.workers) max_queue = std::max(max_queue, w.queue_len);
    if (static_cast<double>(max_queue) > cfg_.rescale.slo_queue_depth) {
      below_rounds_ = 0;
      return current + 1;
    }
    if (static_cast<double>(max_queue) < 0.3 * cfg_.rescale.slo_queue_depth) {
      if (++below_rounds_ >= cfg_.scale_in_patience) {
        below_rounds_ = 0;
        return current > 0 ? current - 1 : current;
      }
    } else {
      below_rounds_ = 0;
    }
    return current;
  }

  // Proactive sizing: extrapolate the arrival-rate trend lead_time ahead,
  // forecast per-tuple processing time with the shared predictor, and
  // provision demand / headroom worker-seconds per second.
  const std::size_t k = std::min<std::size_t>(cfg_.rescale.trend_windows,
                                              wh.total() - wh.first_index());
  double sum_i = 0.0, sum_r = 0.0, sum_ir = 0.0, sum_ii = 0.0;
  std::uint64_t roots = 0, executed = 0;
  double exec_time = 0.0;
  for (std::size_t j = 0; j < k; ++j) {
    const dsps::WindowSample& s = wh.at_global(wh.total() - k + j);
    double rate = static_cast<double>(s.topology.roots_emitted) / std::max(s.window, 1e-9);
    double i = static_cast<double>(j);
    sum_i += i;
    sum_r += rate;
    sum_ir += i * rate;
    sum_ii += i * i;
    roots += s.topology.roots_emitted;
    for (const auto& w : s.workers) {
      executed += w.executed;
      exec_time += w.avg_proc_time * static_cast<double>(w.executed);
    }
  }
  double rate_last = 0.0;
  {
    const dsps::WindowSample& s = last;
    rate_last = static_cast<double>(s.topology.roots_emitted) / std::max(s.window, 1e-9);
  }
  double slope = 0.0;
  const double denom = static_cast<double>(k) * sum_ii - sum_i * sum_i;
  if (k >= 2 && denom > 1e-9) slope = (static_cast<double>(k) * sum_ir - sum_i * sum_r) / denom;
  const double lead_windows = cfg_.rescale.lead_time / std::max(last.window, 1e-9);
  const double rate_hat = std::max(0.0, rate_last + slope * lead_windows);

  // Executions per root (topology depth as observed) and forecast mean
  // processing time over the active workers.
  const double exec_per_root =
      roots > 0 ? static_cast<double>(executed) / static_cast<double>(roots) : 1.0;
  double proc_hat = 0.0;
  std::size_t n_proc = 0;
  if (predictor_ && predictor_->observed_windows() >= predictor_->min_history()) {
    for (std::size_t w = 0; w < surface.worker_count(); ++w) {
      if (!surface.worker_alive(w) || !surface.worker_active(w)) continue;
      proc_hat += predictor_->predict_next(w);
      ++n_proc;
    }
  }
  if (n_proc > 0) {
    proc_hat /= static_cast<double>(n_proc);
  } else {
    // Observed fallback (also the pre-min_history warmup): executed-
    // weighted mean processing time over the trend tail.
    proc_hat = executed > 0 ? exec_time / static_cast<double>(executed) : 0.0;
  }
  *predicted_rate = rate_hat;
  *predicted_proc = proc_hat;
  if (proc_hat <= 0.0) return current;

  const double demand = rate_hat * exec_per_root * proc_hat;  // worker-s per s
  const std::size_t needed = static_cast<std::size_t>(
      std::ceil(demand / cfg_.rescale.headroom - 1e-9));
  if (needed > current) {
    below_rounds_ = 0;
    return needed;
  }
  if (needed < current) {
    // Scale in cautiously: one worker per decision, after patience.
    if (++below_rounds_ >= cfg_.scale_in_patience) {
      below_rounds_ = 0;
      return current - 1;
    }
    return current;
  }
  below_rounds_ = 0;
  return current;
}

}  // namespace repro::control
