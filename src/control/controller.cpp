#include "control/controller.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "common/logging.hpp"

namespace repro::control {

Controller::Controller(double control_interval) : interval_(control_interval) {
  if (!(interval_ > 0.0)) {
    throw std::invalid_argument("Controller: control_interval must be > 0");
  }
}

void Controller::set_control_interval(double interval) {
  if (!(interval > 0.0)) {
    throw std::invalid_argument("Controller: control_interval must be > 0");
  }
  interval_ = interval;
}

void Controller::attach(runtime::ControlSurface& surface) {
  on_attach(surface);
  // A fresh attach starts a fresh round count: totals() describes the
  // attached run, not the controller's lifetime (the DRL arm re-attaches
  // across training episodes before its evaluation run).
  rounds_ = 0;
  total_round_seconds_ = 0.0;
  surface.set_control_hook(interval_,
                           [this](runtime::ControlSurface& s) { control_round(s); });
}

void Controller::control_round(runtime::ControlSurface& surface) {
  auto t0 = std::chrono::steady_clock::now();
  round(surface);
  double secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  ++rounds_;
  total_round_seconds_ += secs;
  stamp_round(secs);
}

ControllerTotals Controller::totals() const {
  ControllerTotals t;
  t.control_rounds = rounds_;
  t.mean_round_ms = mean_round_ms();
  return t;
}

PredictiveController::PredictiveController(ControllerConfig config,
                                           std::shared_ptr<PerformancePredictor> predictor)
    : Controller(config.control_interval), cfg_(config), predictor_(std::move(predictor)) {
  if (!predictor_) throw std::invalid_argument("PredictiveController: null predictor");
}

void PredictiveController::attach(runtime::ControlSurface& surface, const std::string& from,
                                  const std::string& to) {
  pinned_ = {{from, to}};
  Controller::attach(surface);
}

void PredictiveController::on_attach(runtime::ControlSurface& surface) {
  std::vector<runtime::DynamicEdge> edges = pinned_;
  if (edges.empty()) {
    edges = surface.dynamic_edges();
    if (edges.empty()) {
      throw std::invalid_argument("PredictiveController::attach: topology has no dynamic-grouping "
                                  "edge to control");
    }
  }
  edges_.clear();
  for (const runtime::DynamicEdge& e : edges) {
    Edge edge{e.from,
              e.to,
              surface.dynamic_ratio(e.from, e.to),
              MisbehaviorDetector(cfg_.detector),
              SplitRatioPlanner(cfg_.planner),
              {}};
    auto [lo, hi] = surface.tasks_of(e.to);
    edge.task_workers.reserve(hi - lo);
    for (std::size_t t = lo; t < hi; ++t) edge.task_workers.push_back(surface.worker_of_task(t));
    edges_.push_back(std::move(edge));
  }
  // Stream from the oldest retained window of this surface.
  predictor_->reset_stream();
  reset_window_cursor(surface);
  last_refit_time_ = surface.now_seconds();
}

void PredictiveController::round(runtime::ControlSurface& surface) {
  first_action_ = actions_.size();
  observe_new_windows(surface, predictor_.get());

  if (predictor_->observed_windows() < predictor_->min_history()) return;
  maybe_refit(surface);

  for (Edge& edge : edges_) {
    ControlAction action;
    action.time = surface.now_seconds();
    action.from = edge.from;
    action.to = edge.to;
    action.predicted.reserve(edge.task_workers.size());
    for (std::size_t w : edge.task_workers) {
      action.predicted.push_back(predictor_->predict_next(w));
    }
    action.misbehaving = edge.detector.update(action.predicted);
    action.ratios = edge.planner.plan(action.predicted, action.misbehaving);
    if (!action.ratios.empty()) {
      edge.ratio->set_ratios(action.ratios);
      LOG_DEBUG("controller: new ratios on ", edge.from, " -> ", edge.to,
                " at t=", action.time);
    }
    actions_.push_back(std::move(action));
  }
}

void PredictiveController::stamp_round(double seconds) {
  for (std::size_t i = first_action_; i < actions_.size(); ++i) {
    actions_[i].round_seconds = seconds;
  }
}

ControllerTotals PredictiveController::totals() const {
  ControllerTotals t;
  if (actions_.empty()) return t;
  double sum = 0.0;
  for (const auto& a : actions_) sum += a.round_seconds;
  t.control_rounds = actions_.size();
  t.mean_round_ms = 1e3 * sum / static_cast<double>(actions_.size());
  return t;
}

void PredictiveController::maybe_refit(runtime::ControlSurface& surface) {
  if (cfg_.refit_interval <= 0.0) return;
  double now = surface.now_seconds();
  if (now - last_refit_time_ < cfg_.refit_interval) return;
  last_refit_time_ = now;

  surface.window_history().copy_tail(cfg_.refit_window, refit_buf_);
  std::vector<std::size_t> workers;  // union over edges, first-seen order
  for (const Edge& e : edges_) {
    for (std::size_t w : e.task_workers) {
      if (std::find(workers.begin(), workers.end(), w) == workers.end()) workers.push_back(w);
    }
  }
  try {
    predictor_->fit(refit_buf_, workers);
    ++refits_;
    LOG_DEBUG("controller: refit #", refits_, " on ", refit_buf_.size(), " windows at t=", now);
  } catch (const std::exception& e) {
    LOG_WARN("controller: refit skipped at t=", now, ": ", e.what());
  }
}

OracleController::OracleController(PlannerConfig planner)
    : Controller(1.0), planner_(planner) {}

void OracleController::attach(runtime::ControlSurface& surface, const std::string& from,
                              const std::string& to, double interval) {
  from_ = from;
  to_ = to;
  set_control_interval(interval);
  Controller::attach(surface);
}

void OracleController::on_attach(runtime::ControlSurface& surface) {
  if (from_.empty()) {
    throw std::invalid_argument("OracleController::attach: use the (surface, from, to) form — "
                                "the oracle controls exactly one connection");
  }
  if (!surface.supports_fault_injection()) {
    throw std::invalid_argument("OracleController::attach: backend \"" + surface.backend_name() +
                                "\" exposes no injected-fault state");
  }
  ratio_ = surface.dynamic_ratio(from_, to_);
  auto [lo, hi] = surface.tasks_of(to_);
  task_workers_.clear();
  for (std::size_t t = lo; t < hi; ++t) task_workers_.push_back(surface.worker_of_task(t));
}

void OracleController::round(runtime::ControlSurface& surface) {
  std::vector<double> predicted;
  std::vector<bool> misbehaving;
  predicted.reserve(task_workers_.size());
  for (std::size_t w : task_workers_) {
    double slow = surface.worker_slowdown(w);
    double drop = surface.worker_drop_prob(w);
    predicted.push_back(slow);
    misbehaving.push_back(slow > 1.3 || drop > 0.0);
  }
  std::vector<double> ratios = planner_.plan(predicted, misbehaving);
  if (!ratios.empty()) ratio_->set_ratios(ratios);
}

}  // namespace repro::control
