#include "control/controller.hpp"

#include <stdexcept>

#include "common/logging.hpp"

namespace repro::control {

PredictiveController::PredictiveController(ControllerConfig config,
                                           std::shared_ptr<PerformancePredictor> predictor)
    : cfg_(config),
      predictor_(std::move(predictor)),
      detector_(config.detector),
      planner_(config.planner) {
  if (!predictor_) throw std::invalid_argument("PredictiveController: null predictor");
}

void PredictiveController::attach(runtime::ControlSurface& surface, const std::string& from,
                                  const std::string& to) {
  ratio_ = surface.dynamic_ratio(from, to);
  auto [lo, hi] = surface.tasks_of(to);
  task_workers_.clear();
  for (std::size_t t = lo; t < hi; ++t) task_workers_.push_back(surface.worker_of_task(t));
  surface.set_control_hook(cfg_.control_interval,
                           [this](runtime::ControlSurface& s) { control_round(s); });
}

void PredictiveController::control_round(runtime::ControlSurface& surface) {
  const auto& history = surface.history();
  if (history.size() < predictor_->min_history()) return;

  ControlAction action;
  action.time = surface.now_seconds();
  action.predicted.reserve(task_workers_.size());
  for (std::size_t w : task_workers_) {
    action.predicted.push_back(predictor_->predict_next(history, w));
  }
  action.misbehaving = detector_.update(action.predicted);
  action.ratios = planner_.plan(action.predicted, action.misbehaving);
  if (!action.ratios.empty()) {
    ratio_->set_ratios(action.ratios);
    LOG_DEBUG("controller: new ratios at t=", action.time);
  }
  actions_.push_back(std::move(action));
}

OracleController::OracleController(PlannerConfig planner) : planner_(planner) {}

void OracleController::attach(runtime::ControlSurface& surface, const std::string& from,
                              const std::string& to, double interval) {
  if (!surface.supports_fault_injection()) {
    throw std::invalid_argument("OracleController::attach: backend \"" + surface.backend_name() +
                                "\" exposes no injected-fault state");
  }
  ratio_ = surface.dynamic_ratio(from, to);
  auto [lo, hi] = surface.tasks_of(to);
  task_workers_.clear();
  for (std::size_t t = lo; t < hi; ++t) task_workers_.push_back(surface.worker_of_task(t));
  surface.set_control_hook(interval, [this](runtime::ControlSurface& s) { control_round(s); });
}

void OracleController::control_round(runtime::ControlSurface& surface) {
  std::vector<double> predicted;
  std::vector<bool> misbehaving;
  predicted.reserve(task_workers_.size());
  for (std::size_t w : task_workers_) {
    double slow = surface.worker_slowdown(w);
    double drop = surface.worker_drop_prob(w);
    predicted.push_back(slow);
    misbehaving.push_back(slow > 1.3 || drop > 0.0);
  }
  std::vector<double> ratios = planner_.plan(predicted, misbehaving);
  if (!ratios.empty()) ratio_->set_ratios(ratios);
}

}  // namespace repro::control
