#include "control/controller.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "common/logging.hpp"

namespace repro::control {

PredictiveController::PredictiveController(ControllerConfig config,
                                           std::shared_ptr<PerformancePredictor> predictor)
    : cfg_(config), predictor_(std::move(predictor)) {
  if (!predictor_) throw std::invalid_argument("PredictiveController: null predictor");
}

void PredictiveController::attach(runtime::ControlSurface& surface) {
  std::vector<runtime::DynamicEdge> edges = surface.dynamic_edges();
  if (edges.empty()) {
    throw std::invalid_argument("PredictiveController::attach: topology has no dynamic-grouping "
                                "edge to control");
  }
  attach_edges(surface, edges);
}

void PredictiveController::attach(runtime::ControlSurface& surface, const std::string& from,
                                  const std::string& to) {
  attach_edges(surface, {{from, to}});
}

void PredictiveController::attach_edges(runtime::ControlSurface& surface,
                                        const std::vector<runtime::DynamicEdge>& edges) {
  edges_.clear();
  for (const runtime::DynamicEdge& e : edges) {
    Edge edge{e.from,
              e.to,
              surface.dynamic_ratio(e.from, e.to),
              MisbehaviorDetector(cfg_.detector),
              SplitRatioPlanner(cfg_.planner),
              {}};
    auto [lo, hi] = surface.tasks_of(e.to);
    edge.task_workers.reserve(hi - lo);
    for (std::size_t t = lo; t < hi; ++t) edge.task_workers.push_back(surface.worker_of_task(t));
    edges_.push_back(std::move(edge));
  }
  // Stream from the oldest retained window of this surface.
  predictor_->reset_stream();
  next_window_ = surface.window_history().first_index();
  last_refit_time_ = surface.now_seconds();
  surface.set_control_hook(cfg_.control_interval,
                           [this](runtime::ControlSurface& s) { control_round(s); });
}

void PredictiveController::control_round(runtime::ControlSurface& surface) {
  auto t0 = std::chrono::steady_clock::now();
  const runtime::WindowHistory& wh = surface.window_history();

  // Feed windows the predictor has not seen yet, each exactly once (a
  // bounded spine may have evicted very old unseen windows; skip those).
  for (std::size_t i = std::max(next_window_, wh.first_index()); i < wh.total(); ++i) {
    predictor_->observe(wh.at_global(i));
  }
  next_window_ = wh.total();

  if (predictor_->observed_windows() < predictor_->min_history()) return;
  maybe_refit(surface);

  std::size_t first_action = actions_.size();
  for (Edge& edge : edges_) {
    ControlAction action;
    action.time = surface.now_seconds();
    action.from = edge.from;
    action.to = edge.to;
    action.predicted.reserve(edge.task_workers.size());
    for (std::size_t w : edge.task_workers) {
      action.predicted.push_back(predictor_->predict_next(w));
    }
    action.misbehaving = edge.detector.update(action.predicted);
    action.ratios = edge.planner.plan(action.predicted, action.misbehaving);
    if (!action.ratios.empty()) {
      edge.ratio->set_ratios(action.ratios);
      LOG_DEBUG("controller: new ratios on ", edge.from, " -> ", edge.to,
                " at t=", action.time);
    }
    actions_.push_back(std::move(action));
  }

  double secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  for (std::size_t i = first_action; i < actions_.size(); ++i) {
    actions_[i].round_seconds = secs;
  }
}

void PredictiveController::maybe_refit(runtime::ControlSurface& surface) {
  if (cfg_.refit_interval <= 0.0) return;
  double now = surface.now_seconds();
  if (now - last_refit_time_ < cfg_.refit_interval) return;
  last_refit_time_ = now;

  surface.window_history().copy_tail(cfg_.refit_window, refit_buf_);
  std::vector<std::size_t> workers;  // union over edges, first-seen order
  for (const Edge& e : edges_) {
    for (std::size_t w : e.task_workers) {
      if (std::find(workers.begin(), workers.end(), w) == workers.end()) workers.push_back(w);
    }
  }
  try {
    predictor_->fit(refit_buf_, workers);
    ++refits_;
    LOG_DEBUG("controller: refit #", refits_, " on ", refit_buf_.size(), " windows at t=", now);
  } catch (const std::exception& e) {
    LOG_WARN("controller: refit skipped at t=", now, ": ", e.what());
  }
}

OracleController::OracleController(PlannerConfig planner) : planner_(planner) {}

void OracleController::attach(runtime::ControlSurface& surface, const std::string& from,
                              const std::string& to, double interval) {
  if (!surface.supports_fault_injection()) {
    throw std::invalid_argument("OracleController::attach: backend \"" + surface.backend_name() +
                                "\" exposes no injected-fault state");
  }
  ratio_ = surface.dynamic_ratio(from, to);
  auto [lo, hi] = surface.tasks_of(to);
  task_workers_.clear();
  for (std::size_t t = lo; t < hi; ++t) task_workers_.push_back(surface.worker_of_task(t));
  surface.set_control_hook(interval, [this](runtime::ControlSurface& s) { control_round(s); });
}

void OracleController::control_round(runtime::ControlSurface& surface) {
  std::vector<double> predicted;
  std::vector<bool> misbehaving;
  predicted.reserve(task_workers_.size());
  for (std::size_t w : task_workers_) {
    double slow = surface.worker_slowdown(w);
    double drop = surface.worker_drop_prob(w);
    predicted.push_back(slow);
    misbehaving.push_back(slow > 1.3 || drop > 0.0);
  }
  std::vector<double> ratios = planner_.plan(predicted, misbehaving);
  if (!ratios.empty()) ratio_->set_ratios(ratios);
}

}  // namespace repro::control
