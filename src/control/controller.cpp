#include "control/controller.hpp"

#include <stdexcept>

#include "common/logging.hpp"

namespace repro::control {

PredictiveController::PredictiveController(ControllerConfig config,
                                           std::shared_ptr<PerformancePredictor> predictor)
    : cfg_(config),
      predictor_(std::move(predictor)),
      detector_(config.detector),
      planner_(config.planner) {
  if (!predictor_) throw std::invalid_argument("PredictiveController: null predictor");
}

void PredictiveController::attach(dsps::Engine& engine, const std::string& from,
                                  const std::string& to) {
  ratio_ = engine.dynamic_ratio(from, to);
  if (!ratio_) {
    throw std::invalid_argument("PredictiveController::attach: no dynamic grouping " + from +
                                " -> " + to);
  }
  auto [lo, hi] = engine.tasks_of(to);
  task_workers_.clear();
  for (std::size_t t = lo; t < hi; ++t) task_workers_.push_back(engine.worker_of_task(t));
  engine.set_control_callback(cfg_.control_interval,
                              [this](dsps::Engine& e) { control_round(e); });
}

void PredictiveController::control_round(dsps::Engine& engine) {
  const auto& history = engine.history();
  if (history.size() < predictor_->min_history()) return;

  ControlAction action;
  action.time = engine.now();
  action.predicted.reserve(task_workers_.size());
  for (std::size_t w : task_workers_) {
    action.predicted.push_back(predictor_->predict_next(history, w));
  }
  action.misbehaving = detector_.update(action.predicted);
  action.ratios = planner_.plan(action.predicted, action.misbehaving);
  if (!action.ratios.empty()) {
    ratio_->set_ratios(action.ratios);
    LOG_DEBUG("controller: new ratios at t=", action.time);
  }
  actions_.push_back(std::move(action));
}

OracleController::OracleController(PlannerConfig planner) : planner_(planner) {}

void OracleController::attach(dsps::Engine& engine, const std::string& from, const std::string& to,
                              double interval) {
  ratio_ = engine.dynamic_ratio(from, to);
  if (!ratio_) {
    throw std::invalid_argument("OracleController::attach: no dynamic grouping " + from + " -> " +
                                to);
  }
  auto [lo, hi] = engine.tasks_of(to);
  task_workers_.clear();
  for (std::size_t t = lo; t < hi; ++t) task_workers_.push_back(engine.worker_of_task(t));
  engine.set_control_callback(interval, [this](dsps::Engine& e) { control_round(e); });
}

void OracleController::control_round(dsps::Engine& engine) {
  std::vector<double> predicted;
  std::vector<bool> misbehaving;
  predicted.reserve(task_workers_.size());
  for (std::size_t w : task_workers_) {
    double slow = engine.worker(w).slowdown;
    double drop = engine.worker(w).drop_prob;
    predicted.push_back(slow);
    misbehaving.push_back(slow > 1.3 || drop > 0.0);
  }
  std::vector<double> ratios = planner_.plan(predicted, misbehaving);
  if (!ratios.empty()) ratio_->set_ratios(ratios);
}

}  // namespace repro::control
