#pragma once
// Model-free DRL control arm (the bake-off's learning baseline, after the
// model-free-control-for-DSDPS line of work): a DQN over the same
// multilevel WindowSample statistics the predictive arm consumes. State
// is the controlled edge's per-worker queue/latency/rate feature rows
// from the StreamingFeatureExtractor (running-standardized); actions are
// discretized routing moves on the edge's DynamicRatio (keep current,
// uniform, down-weight one downstream task) plus, when enabled and the
// backend scales, one-worker rescale moves; the reward is SLO-weighted
// throughput minus loss. The Q-network is a two-layer MLP from the nn/
// library trained by experience replay with a periodically synced target
// network and seeded epsilon-greedy exploration — every draw comes from
// one Pcg32 stream, so a fixed seed yields an identical policy.
//
// Unlike the predictive arm it needs no pretrained model: train it by
// running deterministic sim episodes with set_training(true) (the
// scenario harness does this), then freeze with set_training(false) for
// the evaluation run.
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "control/controller.hpp"
#include "control/features.hpp"
#include "control/rescale_planner.hpp"
#include "nn/dense.hpp"
#include "nn/optimizer.hpp"
#include "tensor/matrix.hpp"

namespace repro::control {

/// DQN hyperparameters. validate() is fail-closed and names the
/// offending field.
struct DrlControllerConfig {
  double control_interval = 2.0;  ///< seconds between control rounds
  std::size_t hidden = 32;        ///< Q-network hidden width
  double gamma = 0.9;             ///< discount
  double lr = 3e-3;               ///< Adam learning rate
  std::size_t replay_capacity = 2048;
  std::size_t batch_size = 32;    ///< replay minibatch
  std::size_t min_replay = 48;    ///< transitions required before training
  std::size_t target_sync = 25;   ///< train steps between target-net syncs
  double epsilon_start = 1.0;     ///< exploration anneal (training mode)
  double epsilon_end = 0.05;
  double epsilon_decay_steps = 300.0;  ///< selections to anneal over
  double grad_clip = 5.0;
  /// Ratio share a down-weighted task keeps, as a fraction of its uniform
  /// share (the bypass move), in (0, 1).
  double down_weight = 0.25;
  /// Reward shaping: r = acked/roots - loss_weight * (failed+shed)/roots
  /// - latency_weight * max(0, p99/slo_p99 - 1), over the windows since
  /// the previous decision.
  double slo_p99 = 1.0;  ///< seconds
  double loss_weight = 4.0;
  double latency_weight = 1.0;
  /// Add one-worker scale-out/scale-in actions when the backend supports
  /// elastic scaling (bounds from `rescale`). Off by default: the routing
  /// action set alone matches the fixed-pool fault scenarios.
  bool allow_rescale = false;
  RescaleConfig rescale{};
  std::uint64_t seed = 7;

  void validate() const;
};

/// One applied decision, kept for experiment introspection.
struct DrlAction {
  double time = 0.0;
  std::size_t action = 0;  ///< Q-head index (see action_name)
  bool explored = false;   ///< epsilon branch (training mode only)
  double reward = 0.0;     ///< reward credited to the *previous* action
};

class DrlController : public Controller {
 public:
  explicit DrlController(DrlControllerConfig config = {});
  ~DrlController();

  /// Topology attach (inherited): controls the first dynamic-grouping
  /// edge. Throws std::invalid_argument when the topology has none.
  using Controller::attach;
  /// Single-edge form: control only the (from -> to) connection.
  void attach(runtime::ControlSurface& surface, const std::string& from, const std::string& to);

  /// Training mode: explore (epsilon-greedy), record transitions, and run
  /// replay updates each round. Off = frozen greedy policy (the
  /// evaluation arm). Default on.
  void set_training(bool on) { training_ = on; }
  bool training() const { return training_; }
  /// Close the current episode: the next round starts a fresh
  /// state/action chain (transitions never bridge episodes).
  void end_episode();

  const std::vector<DrlAction>& decisions() const { return decisions_; }
  std::size_t replay_size() const { return replay_.size(); }
  std::size_t train_steps() const { return train_steps_; }
  std::size_t selections() const { return selections_; }
  /// Current exploration rate (training mode anneal).
  double epsilon() const;
  /// Q-head count after attach: 2 + downstream tasks (+2 with rescale).
  std::size_t action_count() const { return action_count_; }
  /// Stable label of a Q-head ("keep", "uniform", "bypass-2", ...).
  std::string action_name(std::size_t action) const;
  const DrlControllerConfig& config() const { return cfg_; }

  std::string name() const override { return "drl"; }

 protected:
  void on_attach(runtime::ControlSurface& surface) override;
  void round(runtime::ControlSurface& surface) override;

 private:
  struct Transition {
    std::vector<double> state;
    std::vector<double> next_state;
    std::size_t action = 0;
    double reward = 0.0;
  };

  void build_network();
  void sync_target();
  /// Latest standardized per-worker feature rows -> `out` (state_dim_).
  void build_state(std::vector<double>& out);
  std::size_t select_action(const std::vector<double>& state, bool* explored);
  double take_reward();
  void apply_action(runtime::ControlSurface& surface, std::size_t action);
  void train_step();
  /// Forward `rows` states through (l1, l2) -> q (one row per state).
  void forward_q(nn::Dense& l1, nn::Dense& l2, const tensor::Matrix& x, tensor::Matrix& q,
                 bool training_pass);

  DrlControllerConfig cfg_;
  bool training_ = true;
  common::Pcg32 rng_;

  // Controlled edge (captured at attach).
  std::vector<runtime::DynamicEdge> pinned_;
  std::string from_;
  std::string to_;
  std::shared_ptr<dsps::DynamicRatio> ratio_;
  std::vector<std::size_t> task_workers_;
  bool rescale_active_ = false;  ///< allow_rescale && backend supports it
  std::unique_ptr<RescalePlanner> rescale_planner_;

  // Feature pipeline.
  std::unique_ptr<StreamingFeatureExtractor> extractor_;
  std::size_t state_dim_ = 0;
  std::size_t action_count_ = 0;
  /// Running per-dimension standardization (Welford; frozen in eval).
  std::vector<double> feat_mean_, feat_m2_;
  std::size_t feat_count_ = 0;

  // Q-network + target network (built at first attach).
  std::unique_ptr<nn::Dense> l1_, l2_;
  std::unique_ptr<nn::Dense> t1_, t2_;
  std::unique_ptr<nn::Adam> opt_;
  std::vector<nn::ParamRef> params_;

  // Replay + bookkeeping.
  std::vector<Transition> replay_;
  std::size_t replay_head_ = 0;
  std::size_t selections_ = 0;
  std::size_t train_steps_ = 0;
  std::vector<DrlAction> decisions_;

  // Pending reward accumulators (windows since the previous decision).
  std::uint64_t pend_acked_ = 0, pend_failed_ = 0, pend_shed_ = 0, pend_roots_ = 0;
  double pend_p99_ = 0.0;

  bool have_prev_ = false;
  std::vector<double> prev_state_;
  std::size_t prev_action_ = 0;

  // Reused workspaces.
  std::vector<double> state_ws_;
  tensor::Matrix row_ws_;                       ///< one extractor feature row
  tensor::Matrix x1_ws_, q1_ws_, h_ws_;         ///< greedy selection
  tensor::Matrix xb_ws_, qb_ws_, xn_ws_, qn_ws_;  ///< replay minibatch
  tensor::Matrix dq_ws_, dh_ws_, dx_ws_;        ///< backward pass
  std::vector<double> ratios_ws_;
};

}  // namespace repro::control
