#include "control/baseline_predictors.hpp"

#include <algorithm>
#include <stdexcept>

namespace repro::control {

ArimaPredictor::ArimaPredictor(baselines::ArimaConfig config, std::size_t fit_tail,
                               std::size_t horizon)
    : cfg_(config), fit_tail_(fit_tail), horizon_(std::max<std::size_t>(1, horizon)) {}

std::size_t ArimaPredictor::min_history() const {
  return cfg_.long_ar + std::max(cfg_.p, cfg_.q) + cfg_.q + 2 + static_cast<std::size_t>(cfg_.d);
}

void ArimaPredictor::fit(const std::vector<dsps::WindowSample>& history,
                         const std::vector<std::size_t>& workers) {
  // ARIMA is refit per worker at prediction time; fit() only records a
  // fallback level for degenerate histories.
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& s : history) {
    for (std::size_t w : workers) {
      sum += worker_target(s, w);
      ++n;
    }
  }
  fallback_ = n > 0 ? sum / static_cast<double>(n) : 0.0;
}

double ArimaPredictor::predict_next(const std::vector<dsps::WindowSample>& history,
                                    std::size_t worker) {
  std::vector<double> series = target_series(history, worker);
  if (series.size() > fit_tail_) {
    series.erase(series.begin(), series.end() - static_cast<std::ptrdiff_t>(fit_tail_));
  }
  if (series.size() < min_history()) {
    return series.empty() ? fallback_ : series.back();
  }
  try {
    baselines::Arima model(cfg_);
    model.fit(series);
    double pred = model.forecast(horizon_).back();
    return pred > 0.0 ? pred : 0.0;
  } catch (const std::exception&) {
    return series.back();
  }
}

SvrPredictor::SvrPredictor(baselines::SvrConfig config, DatasetConfig dataset)
    : svr_(config), dataset_(std::move(dataset)), max_train_rows_(1500) {}

void SvrPredictor::fit(const std::vector<dsps::WindowSample>& history,
                       const std::vector<std::size_t>& workers) {
  FlatDataset ds = make_pooled_flat_dataset(history, workers, dataset_);
  if (ds.y.size() < 8) throw std::invalid_argument("SvrPredictor::fit: trace too short");
  if (ds.y.size() > max_train_rows_) {
    // Keep the most recent rows: the kernel solve is O(n^2) memory.
    std::size_t keep = max_train_rows_;
    std::size_t start = ds.y.size() - keep;
    tensor::Matrix x(keep, ds.x.cols());
    std::vector<double> y(keep);
    for (std::size_t r = 0; r < keep; ++r) {
      for (std::size_t c = 0; c < ds.x.cols(); ++c) x(r, c) = ds.x(start + r, c);
      y[r] = ds.y[start + r];
    }
    svr_.fit(x, y);
  } else {
    svr_.fit(ds.x, ds.y);
  }
}

double SvrPredictor::predict_next(const std::vector<dsps::WindowSample>& history,
                                  std::size_t worker) {
  tensor::Matrix seq = latest_sequence(history, worker, dataset_);
  std::vector<double> flat;
  flat.reserve(seq.rows() * seq.cols());
  for (std::size_t t = 0; t < seq.rows(); ++t) {
    for (std::size_t c = 0; c < seq.cols(); ++c) flat.push_back(seq(t, c));
  }
  double pred = svr_.predict(flat);
  return pred > 0.0 ? pred : 0.0;
}

HoltWintersPredictor::HoltWintersPredictor(baselines::HoltWintersConfig config,
                                           std::size_t fit_tail, std::size_t horizon)
    : cfg_(config), fit_tail_(fit_tail), horizon_(std::max<std::size_t>(1, horizon)) {}

std::size_t HoltWintersPredictor::min_history() const {
  return cfg_.period > 0 ? 2 * cfg_.period : 2;
}

void HoltWintersPredictor::fit(const std::vector<dsps::WindowSample>&,
                               const std::vector<std::size_t>&) {}

double HoltWintersPredictor::predict_next(const std::vector<dsps::WindowSample>& history,
                                          std::size_t worker) {
  std::vector<double> series = target_series(history, worker);
  if (series.size() > fit_tail_) {
    series.erase(series.begin(), series.end() - static_cast<std::ptrdiff_t>(fit_tail_));
  }
  if (series.size() < min_history()) return series.empty() ? 0.0 : series.back();
  try {
    baselines::HoltWinters model(cfg_);
    model.fit(series);
    double pred = model.forecast(horizon_).back();
    return pred > 0.0 ? pred : 0.0;
  } catch (const std::exception&) {
    return series.back();
  }
}

double ObservedPredictor::predict_next(const std::vector<dsps::WindowSample>& history,
                                       std::size_t worker) {
  if (history.empty()) return 0.0;
  return worker_target(history.back(), worker);
}

double MovingAverageWindowPredictor::predict_next(const std::vector<dsps::WindowSample>& history,
                                                  std::size_t worker) {
  if (history.empty()) return 0.0;
  std::size_t n = std::min(window_, history.size());
  double sum = 0.0;
  for (std::size_t i = history.size() - n; i < history.size(); ++i) {
    sum += worker_target(history[i], worker);
  }
  return sum / static_cast<double>(n);
}

}  // namespace repro::control
