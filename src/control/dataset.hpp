#pragma once
// Converts engine window history into supervised learning datasets for the
// DRNN (sequence -> next target) and the SVR baseline (flattened lags ->
// next target).
#include <vector>

#include "control/features.hpp"
#include "nn/trainer.hpp"
#include "tensor/matrix.hpp"

namespace repro::control {

struct DatasetConfig {
  std::size_t seq_len = 16;  ///< input window count (DRNN) / lags (SVR)
  std::size_t horizon = 1;   ///< predict this many windows ahead
  FeatureConfig features{};
};

/// DRNN dataset over one worker: sample i is the feature sequence of
/// windows [i, i+seq_len) with target = that worker's avg processing time
/// at window i+seq_len+horizon-1.
nn::SequenceDataset make_drnn_dataset(const std::vector<dsps::WindowSample>& history,
                                      std::size_t worker, const DatasetConfig& cfg);

/// Pooled DRNN dataset over several workers (one shared model, more data).
/// Samples are interleaved by window so a temporal train/val split stays
/// chronologically sound.
nn::SequenceDataset make_pooled_drnn_dataset(const std::vector<dsps::WindowSample>& history,
                                             const std::vector<std::size_t>& workers,
                                             const DatasetConfig& cfg);

/// Flat dataset (SVR): row i concatenates the seq_len feature vectors.
struct FlatDataset {
  tensor::Matrix x;
  std::vector<double> y;
};
FlatDataset make_flat_dataset(const std::vector<dsps::WindowSample>& history, std::size_t worker,
                              const DatasetConfig& cfg);
FlatDataset make_pooled_flat_dataset(const std::vector<dsps::WindowSample>& history,
                                     const std::vector<std::size_t>& workers,
                                     const DatasetConfig& cfg);

/// The most recent feature sequence ([seq_len x D]) for live prediction.
tensor::Matrix latest_sequence(const std::vector<dsps::WindowSample>& history, std::size_t worker,
                               const DatasetConfig& cfg);
/// Workspace variant: writes into `out` (reshaped in place), so per-window
/// live prediction reuses one buffer instead of allocating.
void latest_sequence_into(const std::vector<dsps::WindowSample>& history, std::size_t worker,
                          const DatasetConfig& cfg, tensor::Matrix& out);

/// Streaming analogue of latest_sequence_into: assemble the worker's most
/// recent seq_len rows from an incrementally-maintained extractor instead
/// of rescanning history. Bit-identical to the batch path over the same
/// samples. Throws std::invalid_argument when the extractor's feature
/// dimension disagrees with cfg or it holds fewer than seq_len rows.
void streaming_sequence_into(const StreamingFeatureExtractor& extractor, std::size_t worker,
                             const DatasetConfig& cfg, tensor::Matrix& out);

}  // namespace repro::control
