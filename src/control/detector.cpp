#include "control/detector.hpp"

#include <algorithm>
#include <stdexcept>

namespace repro::control {

double median_of(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(mid), values.end());
  double hi = values[mid];
  if (values.size() % 2 == 1) return hi;
  double lo = *std::max_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

MisbehaviorDetector::MisbehaviorDetector(DetectorConfig config) : cfg_(config) {
  if (cfg_.threshold <= 1.0) throw std::invalid_argument("DetectorConfig: threshold must be > 1");
  if (cfg_.consecutive == 0) cfg_.consecutive = 1;
}

const std::vector<bool>& MisbehaviorDetector::update(const std::vector<double>& predicted) {
  if (flagged_.size() != predicted.size()) {
    above_count_.assign(predicted.size(), 0);
    healthy_count_.assign(predicted.size(), 0);
    flagged_.assign(predicted.size(), false);
  }
  // Median over currently healthy entities: once a worker is flagged its
  // (inflated) prediction must not drag the baseline up.
  std::vector<double> healthy;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    if (!flagged_[i]) healthy.push_back(predicted[i]);
  }
  double baseline = median_of(healthy.empty() ? predicted : healthy);

  for (std::size_t i = 0; i < predicted.size(); ++i) {
    bool above = predicted[i] > cfg_.threshold * baseline && predicted[i] > cfg_.min_abs;
    if (above) {
      healthy_count_[i] = 0;
      if (++above_count_[i] >= cfg_.consecutive) flagged_[i] = true;
    } else {
      above_count_[i] = 0;
      if (flagged_[i] && ++healthy_count_[i] >= cfg_.recover_rounds) {
        flagged_[i] = false;
        healthy_count_[i] = 0;
      }
    }
  }
  return flagged_;
}

void MisbehaviorDetector::reset() {
  above_count_.clear();
  healthy_count_.clear();
  flagged_.clear();
}

}  // namespace repro::control
