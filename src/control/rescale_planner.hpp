#pragma once
// Elastic-scaling actuator (the ROADMAP's second actuator next to the
// split-ratio planner): RescalePlanner turns a target active-worker count
// into a deterministic rescale plan — which retired workers to
// re-activate, which active workers to drain out, and which executor
// migrations rebalance load onto freshly activated workers — and
// ElasticController sizes that target every control round from the same
// streaming DRNN forecasts the split-ratio controller consumes (or, in
// its reactive baseline mode, from observed queue depths), driving the
// ControlSurface elastic hooks (add_worker / migrate_tasks /
// retire_worker) against an SLO target with a modeled rescale cost.
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "control/controller.hpp"
#include "control/predictor.hpp"
#include "dsps/scheduler.hpp"
#include "runtime/control_surface.hpp"

namespace repro::control {

/// Scaling bounds, SLO targets and sizing knobs. validate() is
/// fail-closed and names the offending field.
struct RescaleConfig {
  std::size_t min_workers = 1;  ///< never scale below this many active workers
  /// Upper bound on active workers; 0 = the whole worker pool.
  std::size_t max_workers = 0;
  /// SLO: max per-worker queue depth (tuples) the controller defends.
  double slo_queue_depth = 48.0;
  /// SLO: p99 complete latency (seconds) the controller defends.
  double slo_p99_latency = 1.0;
  /// Target utilization of the active workers: the proactive sizer
  /// provisions predicted-demand / headroom worker-seconds per second, so
  /// lower headroom means more slack capacity. In (0, 1].
  double headroom = 0.7;
  /// Minimum seconds between rescale decisions (migration pauses are not
  /// free; see ClusterConfig::rescale_pause).
  double cooldown = 6.0;
  /// Forecast horizon (seconds): the proactive sizer extrapolates the
  /// arrival-rate trend this far ahead, so capacity lands before the
  /// surge instead of after it.
  double lead_time = 4.0;
  /// Windows of history the rate-trend fit uses.
  std::size_t trend_windows = 8;

  void validate() const;
};

/// One deterministic rescale step. Retirement drains are not materialized
/// as moves here — the engine's retire_worker hook performs them through
/// the shared policy (see plan_retire_moves) so routing tables match
/// across backends.
struct RescalePlan {
  std::size_t target_active = 0;
  std::vector<std::size_t> activate;   ///< retired workers to re-activate
  std::vector<std::size_t> retire;     ///< active workers to drain out
  std::vector<dsps::TaskMove> moves;   ///< rebalance migrations (scale-out)
  bool empty() const { return activate.empty() && retire.empty() && moves.empty(); }
};

/// Deterministic pure planner: same pool state + same target -> the same
/// plan, no RNG. Scale-out activates the lowest-id retired workers and
/// rebalances by greedily moving the highest task id off the most-loaded
/// active worker onto the least-loaded one until the load spread is <= 1;
/// scale-in retires the highest-id active workers (LIFO, so an
/// out-then-in excursion returns to the original placement).
class RescalePlanner {
 public:
  explicit RescalePlanner(RescaleConfig config);

  const RescaleConfig& config() const { return cfg_; }

  /// Plan toward `target_active` active workers. `worker_tasks[w]` is the
  /// current executor placement (task ids in order), `alive`/`active` the
  /// pool state. The target is clamped to [min_workers, resolved max] and
  /// to the alive-worker count; the returned plan never strands an
  /// executor on a dead or retired worker.
  RescalePlan plan(const std::vector<std::vector<std::size_t>>& worker_tasks,
                   const std::vector<bool>& alive, const std::vector<bool>& active,
                   std::size_t target_active) const;

 private:
  RescaleConfig cfg_;
};

/// The migrations the engine's retire_worker hook performs when draining
/// `worker`: dsps::plan_crash_reassignment over the alive AND active
/// candidates (excluding `worker`). Exposed so property tests can verify
/// a full plan (activate -> moves -> retire drains) strands nothing.
/// Throws std::invalid_argument when no candidate host remains.
std::vector<dsps::TaskMove> plan_retire_moves(
    const std::vector<std::vector<std::size_t>>& worker_tasks, const std::vector<bool>& alive,
    const std::vector<bool>& active, std::size_t worker);

/// Fail-closed plan validation against a pool state: every referenced
/// worker exists, activations are alive, retirements are active, and
/// every migration destination is alive and in the post-activation active
/// set. Throws std::invalid_argument naming the offending field (e.g.
/// "RescalePlan.moves[2].to_worker: worker 5 is dead").
void validate_rescale_plan(const RescalePlan& plan,
                           const std::vector<std::vector<std::size_t>>& worker_tasks,
                           const std::vector<bool>& alive, const std::vector<bool>& active);

/// One applied (or attempted) rescale, kept for experiment introspection.
struct RescaleAction {
  double time = 0.0;
  std::size_t active_before = 0;
  std::size_t target = 0;
  std::vector<std::size_t> activated;
  std::vector<std::size_t> retired;
  std::size_t migrations = 0;      ///< rebalance moves issued this action
  double predicted_rate = 0.0;     ///< sizing input: arrival forecast (roots/s)
  double predicted_proc = 0.0;     ///< sizing input: mean proc-time forecast (s)
};

struct ElasticControllerConfig {
  RescaleConfig rescale{};
  double control_interval = 2.0;  ///< seconds between control rounds
  /// Reactive threshold baseline (the T6 comparison arm): size from the
  /// *observed* max queue depth instead of the forecast — scale out one
  /// worker after the SLO is already breached, scale in after
  /// `scale_in_patience` calm rounds.
  bool reactive = false;
  /// Consecutive rounds of below-target demand required before scaling
  /// in (both modes; scale-in is one worker per decision).
  std::size_t scale_in_patience = 3;
};

/// The elastic mode of the control framework: consumes the same streaming
/// window history (and, proactively, the same DRNN per-worker forecasts)
/// as the split-ratio controller, but actuates worker scale-out/in and
/// executor migration instead of routing ratios.
class ElasticController : public Controller {
 public:
  /// `predictor` may be null: the proactive sizer then falls back to the
  /// observed mean processing time (reactive mode never consults it).
  /// attach() (inherited) throws std::invalid_argument on a backend
  /// without elastic scaling.
  ElasticController(ElasticControllerConfig config,
                    std::shared_ptr<PerformancePredictor> predictor);

  const std::vector<RescaleAction>& actions() const { return actions_; }
  /// Applied rescales (actions that changed the active set).
  std::size_t rescales() const { return actions_.size(); }
  /// Active-worker integral (worker-seconds) accumulated over the run —
  /// the resource-cost metric of the T6 bench. Updated every control
  /// round; call after the final round (or after stop()) for the total.
  double worker_seconds() const { return worker_seconds_; }
  const ElasticControllerConfig& config() const { return cfg_; }

  std::string name() const override { return "elastic"; }
  /// Historical counting unit: applied rescales (rounds that changed the
  /// active worker set).
  ControllerTotals totals() const override;

 protected:
  void on_attach(runtime::ControlSurface& surface) override;
  void round(runtime::ControlSurface& surface) override;

 private:
  std::size_t decide_target(const runtime::ControlSurface& surface, std::size_t current,
                            double* predicted_rate, double* predicted_proc);

  ElasticControllerConfig cfg_;
  RescalePlanner planner_;
  std::shared_ptr<PerformancePredictor> predictor_;
  std::vector<RescaleAction> actions_;
  double last_change_time_ = 0.0;
  bool changed_once_ = false;
  std::size_t below_rounds_ = 0;
  double ws_last_time_ = 0.0;
  double worker_seconds_ = 0.0;
};

}  // namespace repro::control
