#include "control/features.hpp"

#include <algorithm>
#include <stdexcept>

namespace repro::control {
namespace {

constexpr std::size_t kWorkerFeatures = 8;
constexpr std::size_t kMachineFeatures = 2;
constexpr std::size_t kPerColocated = 3;

const dsps::WorkerWindowStats& worker_stats(const dsps::WindowSample& sample, std::size_t worker) {
  for (const auto& w : sample.workers) {
    if (w.worker == worker) return w;
  }
  throw std::invalid_argument("worker_features: worker not in sample");
}

const dsps::MachineWindowStats& machine_stats(const dsps::WindowSample& sample,
                                              std::size_t machine) {
  for (const auto& m : sample.machines) {
    if (m.machine == machine) return m;
  }
  throw std::invalid_argument("worker_features: machine not in sample");
}

}  // namespace

std::size_t feature_dim(const FeatureConfig& cfg) {
  std::size_t n = kWorkerFeatures + kMachineFeatures;
  if (cfg.include_colocated) n += cfg.max_colocated * kPerColocated;
  return n;
}

std::vector<std::string> feature_names(const FeatureConfig& cfg) {
  std::vector<std::string> names = {
      "w.executed",  "w.received", "w.avg_proc_time", "w.avg_queue_wait",
      "w.queue_len", "w.cpu_share", "w.gc_pause",     "w.mem_mb",
      "m.cpu_util",  "m.load",
  };
  if (cfg.include_colocated) {
    for (std::size_t i = 0; i < cfg.max_colocated; ++i) {
      std::string p = "co" + std::to_string(i) + ".";
      names.push_back(p + "cpu_share");
      names.push_back(p + "executed");
      names.push_back(p + "queue_len");
    }
  }
  return names;
}

std::vector<double> worker_features(const dsps::WindowSample& sample, std::size_t worker,
                                    const FeatureConfig& cfg) {
  const auto& w = worker_stats(sample, worker);
  const auto& m = machine_stats(sample, w.machine);

  std::vector<double> f;
  f.reserve(feature_dim(cfg));
  f.push_back(static_cast<double>(w.executed));
  f.push_back(static_cast<double>(w.received));
  f.push_back(w.avg_proc_time);
  f.push_back(w.avg_queue_wait);
  f.push_back(static_cast<double>(w.queue_len));
  f.push_back(w.cpu_share);
  f.push_back(w.gc_pause);
  f.push_back(w.mem_mb);
  f.push_back(m.cpu_util);
  f.push_back(m.load);

  if (cfg.include_colocated) {
    // Co-located workers sorted by cpu share descending: the busiest
    // neighbors carry the interference signal.
    std::vector<const dsps::WorkerWindowStats*> neighbors;
    for (const auto& other : sample.workers) {
      if (other.machine == w.machine && other.worker != worker) neighbors.push_back(&other);
    }
    std::sort(neighbors.begin(), neighbors.end(),
              [](const auto* a, const auto* b) { return a->cpu_share > b->cpu_share; });
    for (std::size_t i = 0; i < cfg.max_colocated; ++i) {
      if (i < neighbors.size()) {
        f.push_back(neighbors[i]->cpu_share);
        f.push_back(static_cast<double>(neighbors[i]->executed));
        f.push_back(static_cast<double>(neighbors[i]->queue_len));
      } else {
        f.push_back(0.0);
        f.push_back(0.0);
        f.push_back(0.0);
      }
    }
  }
  return f;
}

double worker_target(const dsps::WindowSample& sample, std::size_t worker) {
  return worker_stats(sample, worker).avg_proc_time;
}

std::vector<double> target_series(const std::vector<dsps::WindowSample>& history,
                                  std::size_t worker) {
  std::vector<double> out;
  out.reserve(history.size());
  for (const auto& s : history) out.push_back(worker_target(s, worker));
  return out;
}

}  // namespace repro::control
