#include "control/features.hpp"

#include <algorithm>
#include <stdexcept>

namespace repro::control {
namespace {

constexpr std::size_t kWorkerFeatures = 8;
constexpr std::size_t kMachineFeatures = 2;
constexpr std::size_t kPerColocated = 3;

const dsps::WorkerWindowStats& worker_stats(const dsps::WindowSample& sample, std::size_t worker) {
  for (const auto& w : sample.workers) {
    if (w.worker == worker) return w;
  }
  throw std::invalid_argument("worker_features: worker not in sample");
}

const dsps::MachineWindowStats& machine_stats(const dsps::WindowSample& sample,
                                              std::size_t machine) {
  for (const auto& m : sample.machines) {
    if (m.machine == machine) return m;
  }
  throw std::invalid_argument("worker_features: machine not in sample");
}

}  // namespace

std::size_t feature_dim(const FeatureConfig& cfg) {
  std::size_t n = kWorkerFeatures + kMachineFeatures;
  if (cfg.include_colocated) n += cfg.max_colocated * kPerColocated;
  if (cfg.include_backpressure) n += 1;
  return n;
}

std::vector<std::string> feature_names(const FeatureConfig& cfg) {
  std::vector<std::string> names = {
      "w.executed",  "w.received", "w.avg_proc_time", "w.avg_queue_wait",
      "w.queue_len", "w.cpu_share", "w.gc_pause",     "w.mem_mb",
      "m.cpu_util",  "m.load",
  };
  if (cfg.include_colocated) {
    for (std::size_t i = 0; i < cfg.max_colocated; ++i) {
      std::string p = "co" + std::to_string(i) + ".";
      names.push_back(p + "cpu_share");
      names.push_back(p + "executed");
      names.push_back(p + "queue_len");
    }
  }
  if (cfg.include_backpressure) names.push_back("w.bp_stall");
  return names;
}

std::vector<double> worker_features(const dsps::WindowSample& sample, std::size_t worker,
                                    const FeatureConfig& cfg) {
  std::vector<double> f(feature_dim(cfg));
  worker_features_into(sample, worker, cfg, f.data());
  return f;
}

void worker_features_into(const dsps::WindowSample& sample, std::size_t worker,
                          const FeatureConfig& cfg, double* out) {
  const auto& w = worker_stats(sample, worker);
  const auto& m = machine_stats(sample, w.machine);

  double* f = out;
  *f++ = static_cast<double>(w.executed);
  *f++ = static_cast<double>(w.received);
  *f++ = w.avg_proc_time;
  *f++ = w.avg_queue_wait;
  *f++ = static_cast<double>(w.queue_len);
  *f++ = w.cpu_share;
  *f++ = w.gc_pause;
  *f++ = w.mem_mb;
  *f++ = m.cpu_util;
  *f++ = m.load;

  if (cfg.include_colocated) {
    // Co-located workers sorted by cpu share descending: the busiest
    // neighbors carry the interference signal. Thread-local scratch keeps
    // the streaming hot path allocation-free.
    thread_local std::vector<const dsps::WorkerWindowStats*> neighbors;
    neighbors.clear();
    for (const auto& other : sample.workers) {
      if (other.machine == w.machine && other.worker != worker) neighbors.push_back(&other);
    }
    std::sort(neighbors.begin(), neighbors.end(),
              [](const auto* a, const auto* b) { return a->cpu_share > b->cpu_share; });
    for (std::size_t i = 0; i < cfg.max_colocated; ++i) {
      if (i < neighbors.size()) {
        *f++ = neighbors[i]->cpu_share;
        *f++ = static_cast<double>(neighbors[i]->executed);
        *f++ = static_cast<double>(neighbors[i]->queue_len);
      } else {
        *f++ = 0.0;
        *f++ = 0.0;
        *f++ = 0.0;
      }
    }
  }
  if (cfg.include_backpressure) *f++ = w.bp_stall;
}

double worker_target(const dsps::WindowSample& sample, std::size_t worker) {
  return worker_stats(sample, worker).avg_proc_time;
}

std::vector<double> target_series(const std::vector<dsps::WindowSample>& history,
                                  std::size_t worker) {
  std::vector<double> out;
  out.reserve(history.size());
  for (const auto& s : history) out.push_back(worker_target(s, worker));
  return out;
}

StreamingFeatureExtractor::StreamingFeatureExtractor(FeatureConfig cfg, std::size_t capacity)
    : cfg_(cfg), dim_(feature_dim(cfg)), capacity_(capacity) {
  if (capacity_ == 0) {
    throw std::invalid_argument("StreamingFeatureExtractor: capacity must be > 0");
  }
}

void StreamingFeatureExtractor::observe(const dsps::WindowSample& sample) {
  ++windows_seen_;
  for (const auto& w : sample.workers) {
    if (w.worker >= rings_.size()) rings_.resize(w.worker + 1);
    WorkerRing& r = rings_[w.worker];
    if (r.rows.empty()) {
      r.rows.resize(capacity_ * dim_);
      r.targets.resize(capacity_);
    }
    worker_features_into(sample, w.worker, cfg_, r.rows.data() + r.head * dim_);
    r.targets[r.head] = w.avg_proc_time;
    r.head = (r.head + 1) % capacity_;
    if (r.count < capacity_) ++r.count;
  }
}

std::size_t StreamingFeatureExtractor::rows_of(std::size_t worker) const {
  if (worker >= rings_.size()) return 0;
  return rings_[worker].count;
}

const StreamingFeatureExtractor::WorkerRing& StreamingFeatureExtractor::ring_of(
    std::size_t worker) const {
  if (worker >= rings_.size() || rings_[worker].count == 0) {
    throw std::invalid_argument("StreamingFeatureExtractor: worker " + std::to_string(worker) +
                                " never observed");
  }
  return rings_[worker];
}

void StreamingFeatureExtractor::sequence_into(std::size_t worker, std::size_t len,
                                              tensor::Matrix& out) const {
  const WorkerRing& r = ring_of(worker);
  if (len == 0 || len > r.count) {
    throw std::invalid_argument("StreamingFeatureExtractor: need " + std::to_string(len) +
                                " rows, have " + std::to_string(r.count));
  }
  out.reshape(len, dim_);
  for (std::size_t t = 0; t < len; ++t) {
    std::size_t slot = (r.head + capacity_ - len + t) % capacity_;
    const double* src = r.rows.data() + slot * dim_;
    double* dst = out.row_ptr(t);
    for (std::size_t c = 0; c < dim_; ++c) dst[c] = src[c];
  }
}

void StreamingFeatureExtractor::targets_tail(std::size_t worker, std::size_t n,
                                             std::vector<double>& out) const {
  out.clear();
  const WorkerRing& r = ring_of(worker);
  std::size_t take = std::min(n, r.count);
  out.reserve(take);
  for (std::size_t t = 0; t < take; ++t) {
    std::size_t slot = (r.head + capacity_ - take + t) % capacity_;
    out.push_back(r.targets[slot]);
  }
}

void StreamingFeatureExtractor::reset() {
  windows_seen_ = 0;
  rings_.clear();
}

}  // namespace repro::control
