#pragma once
// Common interface for per-worker performance prediction: given the
// engine's window history, forecast each worker's mean tuple processing
// time `horizon` windows ahead. Implementations: DRNN (the paper's model),
// ARIMA and SVR (the paper's baselines), plus trivial references.
//
// Two usage styles share the interface:
//  - Legacy batch: call predict_next(history, worker) with a history
//    vector each round. Simple, but the caller re-hands the whole trace.
//  - Streaming: feed each new WindowSample once via observe(), then ask
//    predict_next(worker). The base class keeps a bounded rolling window
//    (stream_window() samples) and adapts legacy predictors
//    automatically, so a control round costs O(workers x window)
//    regardless of run length. Implementations can override observe()/
//    predict_next(worker) for fully incremental feature state.
#include <memory>
#include <string>
#include <vector>

#include "dsps/metrics.hpp"
#include "runtime/window_history.hpp"

namespace repro::control {

class PerformancePredictor {
 public:
  virtual ~PerformancePredictor() = default;

  /// Train/refresh the model from a history trace, pooling `workers`.
  virtual void fit(const std::vector<dsps::WindowSample>& history,
                   const std::vector<std::size_t>& workers) = 0;

  /// Predict `worker`'s next-window avg processing time from the most
  /// recent history. Requires fit() first (except memoryless predictors).
  virtual double predict_next(const std::vector<dsps::WindowSample>& history,
                              std::size_t worker) = 0;

  /// Minimum history length predict_next needs.
  virtual std::size_t min_history() const = 0;

  virtual std::string name() const = 0;

  // --- streaming contract ---------------------------------------------
  /// Ingest one new window sample (call once per window, oldest first).
  /// Default: append to an internal rolling window of stream_window()
  /// samples, which feeds the legacy predict path.
  virtual void observe(const dsps::WindowSample& sample);

  /// Predict `worker`'s next-window avg processing time from the samples
  /// fed through observe(). Default: legacy predict_next over the rolling
  /// window — numerically identical to the batch call on the same tail.
  virtual double predict_next(std::size_t worker);

  /// How many most-recent samples the streaming path retains — enough for
  /// predict_next(worker) and for tail refits. Defaults to
  /// max(min_history(), 256).
  virtual std::size_t stream_window() const;

  /// Total samples fed through observe() so far (monotonic; unaffected by
  /// the rolling window's eviction).
  virtual std::size_t observed_windows() const { return recent_.total(); }

  /// Drop all streamed state (e.g. when re-attaching to a new run).
  virtual void reset_stream();

 protected:
  /// Rolling window behind the default streaming implementation.
  const std::vector<dsps::WindowSample>& recent_samples() const { return recent_.samples(); }

 private:
  runtime::WindowHistory recent_;
};

/// Factory by name: "drnn" (alias "drnn-lstm"), "drnn-gru", "arima",
/// "svr", "hw", "observed", "ma". Returns predictors with
/// experiment-default hyperparameters.
std::unique_ptr<PerformancePredictor> make_predictor(const std::string& name,
                                                     std::uint64_t seed = 7);

/// Every name make_predictor accepts, in documentation order — the
/// factory's round-trip surface (tests iterate this).
const std::vector<std::string>& predictor_names();

}  // namespace repro::control
