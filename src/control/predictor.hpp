#pragma once
// Common interface for per-worker performance prediction: given the
// engine's window history, forecast each worker's mean tuple processing
// time `horizon` windows ahead. Implementations: DRNN (the paper's model),
// ARIMA and SVR (the paper's baselines), plus trivial references.
#include <memory>
#include <string>
#include <vector>

#include "dsps/metrics.hpp"

namespace repro::control {

class PerformancePredictor {
 public:
  virtual ~PerformancePredictor() = default;

  /// Train/refresh the model from a history trace, pooling `workers`.
  virtual void fit(const std::vector<dsps::WindowSample>& history,
                   const std::vector<std::size_t>& workers) = 0;

  /// Predict `worker`'s next-window avg processing time from the most
  /// recent history. Requires fit() first (except memoryless predictors).
  virtual double predict_next(const std::vector<dsps::WindowSample>& history,
                              std::size_t worker) = 0;

  /// Minimum history length predict_next needs.
  virtual std::size_t min_history() const = 0;

  virtual std::string name() const = 0;
};

/// Factory by name: "drnn", "drnn-gru", "arima", "svr", "observed", "ma".
/// Returns predictors with experiment-default hyperparameters.
std::unique_ptr<PerformancePredictor> make_predictor(const std::string& name,
                                                     std::uint64_t seed = 7);

}  // namespace repro::control
