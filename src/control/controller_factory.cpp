#include "control/controller_factory.hpp"

#include <stdexcept>

namespace repro::control {

namespace {

std::shared_ptr<PerformancePredictor> resolve_predictor(const ControllerOptions& options,
                                                        const std::string& default_kind) {
  if (options.predictor) return options.predictor;
  return std::shared_ptr<PerformancePredictor>(make_predictor(default_kind, options.seed));
}

}  // namespace

std::unique_ptr<Controller> make_controller(const std::string& name,
                                            const ControllerOptions& options) {
  if (name == "drnn") {
    return std::make_unique<PredictiveController>(options.predictive,
                                                  resolve_predictor(options, "drnn"));
  }
  if (name == "observed") {
    return std::make_unique<PredictiveController>(options.predictive,
                                                  resolve_predictor(options, "observed"));
  }
  if (name == "elastic") {
    // The reactive baseline sizes from observed queue depths only — don't
    // build a DRNN it would never consult.
    auto predictor = options.elastic.reactive ? options.predictor
                                              : resolve_predictor(options, "drnn");
    return std::make_unique<ElasticController>(options.elastic, std::move(predictor));
  }
  if (name == "drl") {
    DrlControllerConfig cfg = options.drl;
    cfg.seed = options.seed;
    return std::make_unique<DrlController>(cfg);
  }
  if (name == "rate") return std::make_unique<RateController>(options.rate);
  std::string valid;
  for (const std::string& n : controller_names()) {
    if (!valid.empty()) valid += ", ";
    valid += n;
  }
  throw std::invalid_argument("make_controller: unknown controller \"" + name +
                              "\" (valid: " + valid + ")");
}

const std::vector<std::string>& controller_names() {
  static const std::vector<std::string> names = {"drnn", "observed", "elastic", "drl", "rate"};
  return names;
}

}  // namespace repro::control
