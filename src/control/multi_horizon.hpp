#pragma once
// Extension X1: a multi-horizon DRNN that jointly forecasts the next H
// windows (output head of width H) instead of training one model per
// horizon. One model then serves every control horizon, and the shared
// representation regularizes the longer horizons.
#include <optional>

#include "control/dataset.hpp"
#include "nn/scaler.hpp"
#include "nn/trainer.hpp"

namespace repro::control {

struct MultiHorizonConfig {
  std::size_t horizons = 8;  ///< predict windows t+1 .. t+H jointly
  std::size_t seq_len = 16;
  FeatureConfig features{};
  std::size_t hidden_size = 32;
  std::size_t num_layers = 2;
  nn::CellKind cell = nn::CellKind::kLstm;
  double dropout = 0.1;
  nn::TrainConfig train{};
  std::uint64_t seed = 7;
};

class MultiHorizonDrnn {
 public:
  explicit MultiHorizonDrnn(MultiHorizonConfig config);

  /// Train on a window history, pooling the given workers.
  void fit(const std::vector<dsps::WindowSample>& history,
           const std::vector<std::size_t>& workers);

  /// Forecast the next `horizons` windows of a worker's mean processing
  /// time, given the most recent history.
  std::vector<double> forecast(const std::vector<dsps::WindowSample>& history,
                               std::size_t worker);

  bool trained() const { return model_.has_value(); }
  std::size_t min_history() const { return cfg_.seq_len; }
  const MultiHorizonConfig& config() const { return cfg_; }
  const nn::TrainReport& last_report() const { return report_; }

  /// Build the joint dataset (exposed for tests).
  static nn::SequenceDataset make_dataset(const std::vector<dsps::WindowSample>& history,
                                          const std::vector<std::size_t>& workers,
                                          const MultiHorizonConfig& cfg);

 private:
  MultiHorizonConfig cfg_;
  std::optional<nn::Drnn> model_;
  nn::StandardScaler feature_scaler_;
  nn::StandardScaler target_scaler_;  ///< per-horizon columns
  nn::TrainReport report_;
};

}  // namespace repro::control
