#pragma once
// Generalized spout-side rate control (the bake-off's source-throttling
// arm, after the generalized-rate-control line of work): instead of
// re-routing tuples around slow workers, RateController retunes the
// credit-based spout throttle — the max-in-flight-roots cap every spout
// task is gated on — with an AIMD policy driven by the same multilevel
// window statistics the other arms consume. Congested windows (SLO-
// violating p99, deep task queues, failures or overflow sheds) cut the
// cap multiplicatively; calm rounds grow it back additively, probing for
// the highest sustainable ingest rate.
#include <cstdint>
#include <vector>

#include "control/controller.hpp"

namespace repro::control {

/// AIMD knobs and SLO targets. validate() is fail-closed and names the
/// offending field.
struct RateControllerConfig {
  double control_interval = 2.0;  ///< seconds between control rounds
  /// Floor on the cap: the controller never throttles below this many
  /// in-flight roots (keeps the pipeline probing instead of parking).
  std::size_t min_pending = 64;
  /// Ceiling on the cap; 0 = the attach-time cap (the configured
  /// max_spout_pending is already the operator's upper bound).
  std::size_t max_pending = 0;
  /// Tuples of additional credit per calm round (additive increase).
  std::size_t additive_step = 256;
  /// Multiplicative decrease factor applied on congestion, in (0, 1).
  double decrease_factor = 0.6;
  /// Congestion signals: any window since the last round with p99
  /// complete latency above slo_p99 (seconds), a task queue deeper than
  /// slo_queue_depth (tuples), failed roots, or overflow sheds.
  double slo_p99 = 1.0;
  double slo_queue_depth = 64.0;

  void validate() const;
};

/// One applied cap change, kept for experiment introspection.
struct RateAction {
  double time = 0.0;
  std::size_t cap_before = 0;
  std::size_t cap_after = 0;
  bool congested = false;  ///< decrease (true) or additive probe (false)
};

/// Deterministic pure-policy controller: the decision is a function of
/// the window history alone (no RNG, no wall clock), so identical
/// histories yield identical cap sequences on every backend.
class RateController : public Controller {
 public:
  explicit RateController(RateControllerConfig config = {});

  const std::vector<RateAction>& actions() const { return actions_; }
  /// The cap the controller last actuated (attach-time cap before the
  /// first decision round).
  std::size_t current_cap() const { return cap_; }
  const RateControllerConfig& config() const { return cfg_; }

  std::string name() const override { return "rate"; }

 protected:
  void on_attach(runtime::ControlSurface& surface) override;
  void round(runtime::ControlSurface& surface) override;

 private:
  RateControllerConfig cfg_;
  std::vector<RateAction> actions_;
  std::size_t cap_ = 0;      ///< live cap (mirrors the surface)
  std::size_t floor_ = 0;    ///< resolved min_pending
  std::size_t ceiling_ = 0;  ///< resolved max_pending
};

}  // namespace repro::control
