#include "control/predictor.hpp"

#include <algorithm>
#include <stdexcept>

#include "control/baseline_predictors.hpp"
#include "control/drnn_predictor.hpp"

namespace repro::control {

void PerformancePredictor::observe(const dsps::WindowSample& sample) {
  if (!recent_.bounded()) recent_.set_capacity(std::max<std::size_t>(stream_window(), 1));
  recent_.push(sample);
}

double PerformancePredictor::predict_next(std::size_t worker) {
  return predict_next(recent_.samples(), worker);
}

std::size_t PerformancePredictor::stream_window() const {
  return std::max<std::size_t>(min_history(), 256);
}

void PerformancePredictor::reset_stream() { recent_ = runtime::WindowHistory(); }

std::unique_ptr<PerformancePredictor> make_predictor(const std::string& name, std::uint64_t seed) {
  if (name == "drnn" || name == "drnn-lstm") {
    DrnnPredictorConfig cfg;
    cfg.seed = seed;
    cfg.train.seed = seed + 1;
    return std::make_unique<DrnnPredictor>(cfg);
  }
  if (name == "drnn-gru") {
    DrnnPredictorConfig cfg;
    cfg.cell = nn::CellKind::kGru;
    cfg.seed = seed;
    cfg.train.seed = seed + 1;
    return std::make_unique<DrnnPredictor>(cfg);
  }
  if (name == "arima") return std::make_unique<ArimaPredictor>();
  if (name == "svr") {
    baselines::SvrConfig svr;
    svr.seed = seed;
    return std::make_unique<SvrPredictor>(svr, DatasetConfig{});
  }
  if (name == "hw") return std::make_unique<HoltWintersPredictor>();
  if (name == "observed") return std::make_unique<ObservedPredictor>();
  if (name == "ma") return std::make_unique<MovingAverageWindowPredictor>();
  throw std::invalid_argument("make_predictor: unknown predictor " + name);
}

const std::vector<std::string>& predictor_names() {
  static const std::vector<std::string> names = {"drnn", "drnn-lstm", "drnn-gru", "arima",
                                                 "svr",  "hw",        "observed", "ma"};
  return names;
}

}  // namespace repro::control
