#include "control/predictor.hpp"

#include <stdexcept>

#include "control/baseline_predictors.hpp"
#include "control/drnn_predictor.hpp"

namespace repro::control {

std::unique_ptr<PerformancePredictor> make_predictor(const std::string& name, std::uint64_t seed) {
  if (name == "drnn" || name == "drnn-lstm") {
    DrnnPredictorConfig cfg;
    cfg.seed = seed;
    cfg.train.seed = seed + 1;
    return std::make_unique<DrnnPredictor>(cfg);
  }
  if (name == "drnn-gru") {
    DrnnPredictorConfig cfg;
    cfg.cell = nn::CellKind::kGru;
    cfg.seed = seed;
    cfg.train.seed = seed + 1;
    return std::make_unique<DrnnPredictor>(cfg);
  }
  if (name == "arima") return std::make_unique<ArimaPredictor>();
  if (name == "svr") {
    baselines::SvrConfig svr;
    svr.seed = seed;
    return std::make_unique<SvrPredictor>(svr, DatasetConfig{});
  }
  if (name == "hw") return std::make_unique<HoltWintersPredictor>();
  if (name == "observed") return std::make_unique<ObservedPredictor>();
  if (name == "ma") return std::make_unique<MovingAverageWindowPredictor>();
  throw std::invalid_argument("make_predictor: unknown predictor " + name);
}

}  // namespace repro::control
