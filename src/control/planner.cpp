#include "control/planner.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace repro::control {

SplitRatioPlanner::SplitRatioPlanner(PlannerConfig config) : cfg_(config) {
  if (cfg_.smoothing < 0.0 || cfg_.smoothing >= 1.0) {
    throw std::invalid_argument("PlannerConfig: smoothing in [0,1)");
  }
}

std::vector<double> SplitRatioPlanner::plan(const std::vector<double>& predicted,
                                            const std::vector<bool>& misbehaving) {
  if (predicted.size() != misbehaving.size() || predicted.empty()) {
    throw std::invalid_argument("SplitRatioPlanner::plan: bad inputs");
  }
  const std::size_t n = predicted.size();

  // Raw weights: inverse predicted processing time for healthy tasks.
  std::vector<double> raw(n, 0.0);
  double healthy_sum = 0.0;
  std::size_t healthy_n = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (misbehaving[i]) continue;
    double p = std::max(predicted[i], 1e-9);
    raw[i] = std::pow(1.0 / p, cfg_.power);
    healthy_sum += raw[i];
    ++healthy_n;
  }
  if (healthy_n == 0) {
    // Everyone misbehaves: fall back to uniform (nothing to bypass to).
    raw.assign(n, 1.0);
    healthy_sum = static_cast<double>(n);
  } else {
    double mean_healthy = healthy_sum / static_cast<double>(healthy_n);
    for (std::size_t i = 0; i < n; ++i) {
      if (misbehaving[i]) raw[i] = cfg_.bypass_weight * mean_healthy;
    }
  }

  // Normalize.
  double total = 0.0;
  for (double w : raw) total += w;
  for (double& w : raw) w /= total;

  // Smooth against the previous plan.
  if (current_.size() == n && cfg_.smoothing > 0.0) {
    for (std::size_t i = 0; i < n; ++i) {
      raw[i] = cfg_.smoothing * current_[i] + (1.0 - cfg_.smoothing) * raw[i];
    }
    double s = 0.0;
    for (double w : raw) s += w;
    for (double& w : raw) w /= s;
  }

  // Skip negligible updates.
  if (current_.size() == n) {
    double l1 = 0.0;
    for (std::size_t i = 0; i < n; ++i) l1 += std::abs(raw[i] - current_[i]);
    if (l1 < cfg_.min_change) return {};
  }
  current_ = raw;
  return raw;
}

void SplitRatioPlanner::reset() { current_.clear(); }

}  // namespace repro::control
